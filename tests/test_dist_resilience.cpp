// Rank-failure tolerance of the distributed backend (DESIGN.md §14):
// comm deadlines + per-rank health words, the poisoned-communicator
// unwind, shard-level checkpointing with bit-identical mid-circuit resume,
// the Young/Daly stride model, in-backend checkpoint-replay recovery, and
// the pool's degraded-mode failover after a CommFailure.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <vector>

#include "common/rng.hpp"
#include "dist/comm.hpp"
#include "dist/dist_checkpoint.hpp"
#include "dist/dist_state_vector.hpp"
#include "ir/passes/layout.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/fault_injection.hpp"
#include "runtime/virtual_qpu.hpp"
#include "sim/state_vector.hpp"

namespace vqsim {
namespace {

using resilience::FaultKind;
using resilience::FaultPlan;
using resilience::FaultRule;
using resilience::ScopedFaultPlan;

FaultRule rule(std::string site, FaultKind kind) {
  FaultRule r;
  r.site = std::move(site);
  r.kind = kind;
  return r;
}

Circuit random_circuit(int num_qubits, std::size_t gates, Rng& rng) {
  Circuit c(num_qubits);
  for (std::size_t i = 0; i < gates; ++i) {
    const int q0 = static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(num_qubits)));
    int q1 = q0;
    while (q1 == q0)
      q1 = static_cast<int>(
          rng.uniform_index(static_cast<std::uint64_t>(num_qubits)));
    switch (rng.uniform_index(6)) {
      case 0: c.h(q0); break;
      case 1:
        c.u3(rng.uniform(-3, 3), rng.uniform(-3, 3), rng.uniform(-3, 3), q0);
        break;
      case 2: c.cx(q0, q1); break;
      case 3: c.cz(q0, q1); break;
      case 4: c.swap(q0, q1); break;
      default: c.rzz(rng.uniform(-3, 3), q0, q1); break;
    }
  }
  return c;
}

/// Drive one exchange through `comm` (the smallest collective that hits
/// the "comm.exchange" fault site).
void one_exchange(SimComm& comm) {
  std::vector<cplx> a(4, cplx{1.0, 0.0});
  std::vector<cplx> b(4, cplx{0.0, 1.0});
  comm.exchange(0, a, 1, b);
}

// -- Comm deadlines + health protocol ----------------------------------------

TEST(CommHealth, DeadlineCutsOffStallAndPoisons) {
  SimComm comm(4);
  comm.set_deadline(std::chrono::milliseconds(10));
  FaultPlan plan;
  FaultRule r = rule("comm.exchange", FaultKind::kStall);
  r.stall = std::chrono::milliseconds(5000);
  r.at_invocations = {0};
  r.detail = 1;
  plan.rules = {r};
  ScopedFaultPlan guard(std::move(plan));

  const auto start = std::chrono::steady_clock::now();
  try {
    one_exchange(comm);
    FAIL() << "deadline-exceeding stall must unwind with CommFailure";
  } catch (const CommFailure& failure) {
    // Cut off after ~the deadline, not after the 5 s stall.
    EXPECT_LT(std::chrono::steady_clock::now() - start,
              std::chrono::milliseconds(2500));
    EXPECT_TRUE(failure.deadline_exceeded());
    EXPECT_EQ(failure.rank(), 1);
    EXPECT_EQ(failure.site(), "comm.exchange");
    EXPECT_EQ(failure.phase(), "exchange");
    EXPECT_GT(failure.bytes_outstanding(), 0u);
  }
  EXPECT_TRUE(comm.poisoned());
  EXPECT_EQ(comm.rank_health(1), RankHealth::kTimedOut);
  EXPECT_EQ(comm.rank_health(0), RankHealth::kHealthy);
  EXPECT_EQ(comm.deadline_exceeded_count(), 1u);
  EXPECT_EQ(comm.last_failure().rank(), 1);
}

TEST(CommHealth, StallWithinDeadlineIsWaitedOut) {
  SimComm comm(2);
  comm.set_deadline(std::chrono::milliseconds(500));
  FaultPlan plan;
  FaultRule r = rule("comm.exchange", FaultKind::kStall);
  r.stall = std::chrono::milliseconds(5);
  r.at_invocations = {0};
  plan.rules = {r};
  ScopedFaultPlan guard(std::move(plan));

  EXPECT_NO_THROW(one_exchange(comm));
  EXPECT_FALSE(comm.poisoned());
  EXPECT_EQ(comm.deadline_exceeded_count(), 0u);
}

TEST(CommHealth, ZeroDeadlineWaitsOutAnyStall) {
  // The un-deadlined control: PR 4 semantics, the straggler is waited out
  // however long it takes and nothing is poisoned.
  SimComm comm(2);
  ASSERT_EQ(comm.deadline().count(), 0);
  FaultPlan plan;
  FaultRule r = rule("comm.exchange", FaultKind::kStall);
  r.stall = std::chrono::milliseconds(30);
  r.at_invocations = {0};
  plan.rules = {r};
  ScopedFaultPlan guard(std::move(plan));

  const auto start = std::chrono::steady_clock::now();
  EXPECT_NO_THROW(one_exchange(comm));
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(29));
  EXPECT_FALSE(comm.poisoned());
}

TEST(CommHealth, PermanentFaultMarksRankDead) {
  SimComm comm(4);
  FaultPlan plan;
  FaultRule r = rule("comm.exchange", FaultKind::kPermanent);
  r.at_invocations = {0};
  r.detail = 2;
  plan.rules = {r};
  ScopedFaultPlan guard(std::move(plan));

  std::vector<cplx> a(2), b(2);
  try {
    comm.exchange(2, a, 3, b);
    FAIL() << "rank death must unwind with CommFailure";
  } catch (const CommFailure& failure) {
    EXPECT_FALSE(failure.deadline_exceeded());
    EXPECT_EQ(failure.rank(), 2);
  }
  EXPECT_EQ(comm.rank_health(2), RankHealth::kDead);
  EXPECT_EQ(comm.rank_failures_count(), 1u);
  EXPECT_EQ(comm.deadline_exceeded_count(), 0u);
}

TEST(CommHealth, PlainTransientFaultPropagatesUnchanged) {
  // PR 4 compatibility: an interconnect hiccup is not a rank failure. It
  // must arrive as the original TransientFault (pool-retryable) and leave
  // the communicator healthy.
  SimComm comm(2);
  comm.set_deadline(std::chrono::milliseconds(10));
  FaultPlan plan;
  FaultRule r = rule("comm.exchange", FaultKind::kTransient);
  r.at_invocations = {0};
  plan.rules = {r};
  ScopedFaultPlan guard(std::move(plan));

  try {
    one_exchange(comm);
    FAIL() << "armed transient rule must throw";
  } catch (const CommFailure&) {
    FAIL() << "TransientFault must not be converted to CommFailure";
  } catch (const resilience::TransientFault&) {
  }
  EXPECT_FALSE(comm.poisoned());
  EXPECT_EQ(comm.rank_health(0), RankHealth::kHealthy);
  // The next exchange (invocation 1, rule is one-shot) works normally.
  EXPECT_NO_THROW(one_exchange(comm));
}

TEST(CommHealth, PoisonedCommUnwindsEveryCollectiveUntilReset) {
  SimComm comm(4);
  std::vector<cplx> a(2), b(2);
  EXPECT_THROW(comm.report_rank_death(3, "comm.exchange", "exchange", 64,
                                      "simulated node loss"),
               CommFailure);
  ASSERT_TRUE(comm.poisoned());

  // Every collective on the poisoned communicator re-throws the recorded
  // failure immediately — no injector armed, no deadlock on the dead peer.
  EXPECT_THROW(comm.exchange(0, a, 1, b), CommFailure);
  EXPECT_THROW(comm.allreduce_sum(std::vector<double>(4, 1.0)), CommFailure);
  try {
    comm.allreduce_sum(std::vector<double>(4, 1.0));
    FAIL();
  } catch (const CommFailure& failure) {
    EXPECT_EQ(failure.rank(), 3);  // the original record, not the allreduce
    EXPECT_EQ(failure.phase(), "exchange");
  }

  // Replacement capacity arrives: all ranks revive, traffic flows again.
  comm.reset_health();
  EXPECT_FALSE(comm.poisoned());
  EXPECT_EQ(comm.rank_health(3), RankHealth::kHealthy);
  EXPECT_NO_THROW(one_exchange(comm));
  // The lifetime failure counter survives the reset.
  EXPECT_EQ(comm.rank_failures_count(), 1u);
}

TEST(CommHealth, InboxFaultSiteCoversPauliReadout) {
  // The expectation path's cross-rank pairing has its own fault site
  // ("comm.inbox"): a rank death during readout unwinds like any other.
  SimComm comm(4);
  DistStateVector dist(6, &comm);
  Circuit c(6);
  c.h(0).h(1).cx(0, 1);  // local-only gates: the layout stays identity
  dist.apply_circuit(c);

  FaultPlan plan;
  FaultRule r = rule("comm.inbox", FaultKind::kPermanent);
  r.at_invocations = {0};
  plan.rules = {r};
  ScopedFaultPlan guard(std::move(plan));

  PauliSum h(6);
  h.add_term(1.0, "XIIIIX");  // X on qubit 5: global bit, cross-rank pairing
  try {
    dist.expectation(h);
    FAIL() << "inbox rank death must unwind with CommFailure";
  } catch (const CommFailure& failure) {
    EXPECT_EQ(failure.site(), "comm.inbox");
    EXPECT_EQ(failure.phase(), "pauli-inbox");
  }
  EXPECT_TRUE(comm.poisoned());
}

// -- Young/Daly checkpoint stride --------------------------------------------

TEST(DistCheckpoint, StrideFollowsYoungDalyModel) {
  // s = round(sqrt(2 c G)), clamped to [1, G].
  EXPECT_EQ(checkpoint_stride(0), 1u);
  EXPECT_EQ(checkpoint_stride(1), 1u);
  EXPECT_EQ(checkpoint_stride(200, 4.0), 40u);   // sqrt(1600)
  EXPECT_EQ(checkpoint_stride(800, 4.0), 80u);   // sqrt(6400)
  EXPECT_EQ(checkpoint_stride(2, 1000.0), 2u);   // clamped to G
  EXPECT_EQ(checkpoint_stride(1000, 0.0), 1u);   // free checkpoints
  // Costlier snapshots space out; more gates space out (sublinearly).
  EXPECT_GT(checkpoint_stride(200, 16.0), checkpoint_stride(200, 4.0));
  EXPECT_GT(checkpoint_stride(2000, 4.0), checkpoint_stride(200, 4.0));
}

// -- Shard checkpoint serialization ------------------------------------------

TEST(DistCheckpoint, SnapshotRoundTripsThroughDiskBitIdentically) {
  const std::string path = "test_ckpt_dist_shards.json";
  std::remove(path.c_str());

  Rng rng(1234);
  const Circuit c = random_circuit(6, 40, rng);
  SimComm comm(4);
  DistStateVector dist(6, &comm);
  const LayoutPlan plan = plan_layout(c, 6, dist.local_qubits());
  dist.apply_circuit_range(c, plan, 0, 25);
  const DistSnapshot snap = dist.snapshot(25);

  write_dist_checkpoint(path, snap);
  ASSERT_TRUE(resilience::checkpoint_exists(path));
  const DistSnapshot loaded = read_dist_checkpoint(path);

  EXPECT_EQ(loaded.num_qubits, snap.num_qubits);
  EXPECT_EQ(loaded.local_qubits, snap.local_qubits);
  EXPECT_EQ(loaded.gate_cursor, 25u);
  EXPECT_EQ(loaded.layout, snap.layout);
  EXPECT_EQ(loaded.greedy_cursor, snap.greedy_cursor);
  EXPECT_EQ(loaded.at_zero_state, snap.at_zero_state);
  ASSERT_EQ(loaded.shards.size(), snap.shards.size());
  for (std::size_t r = 0; r < snap.shards.size(); ++r) {
    ASSERT_EQ(loaded.shards[r].size(), snap.shards[r].size());
    // %.17g -> strtod must reproduce every amplitude bit-for-bit.
    EXPECT_EQ(std::memcmp(loaded.shards[r].data(), snap.shards[r].data(),
                          snap.shards[r].size() * sizeof(cplx)),
              0)
        << "shard " << r;
  }
  std::remove(path.c_str());
}

TEST(DistCheckpoint, DecodeRejectsInconsistentPayload) {
  // A payload whose shard count does not match its partition must be
  // rejected at decode time, not fail later inside restore().
  DistSnapshot snap;
  snap.num_qubits = 6;
  snap.local_qubits = 4;  // 2 rank bits -> 4 shards required
  snap.layout = {0, 1, 2, 3, 4, 5};
  snap.shards.assign(3, AmpVector(16, cplx{0.0, 0.0}));  // one missing
  const std::string payload = encode_dist_snapshot(snap);
  EXPECT_THROW(decode_dist_snapshot(telemetry::JsonValue::parse(payload)),
               resilience::CheckpointError);
}

TEST(DistCheckpoint, RestoreRejectsWrongPartition) {
  SimComm comm2(2);
  DistStateVector small(6, &comm2);
  const DistSnapshot snap = small.snapshot(0);

  SimComm comm4(4);
  DistStateVector big(6, &comm4);
  EXPECT_THROW(big.restore(snap), std::invalid_argument);
}

// -- Mid-circuit kill/resume (S3) --------------------------------------------

class DistResume : public ::testing::TestWithParam<int> {};

TEST_P(DistResume, KillAtEveryStrideResumesBitIdentically) {
  const int ranks = GetParam();
  const int n = 6;
  Rng rng(991 + static_cast<std::uint64_t>(ranks));
  const std::size_t gates = 36;
  const Circuit c = random_circuit(n, gates, rng);

  SimComm ref_comm(ranks);
  DistStateVector reference(n, &ref_comm);
  const LayoutPlan plan = plan_layout(c, n, reference.local_qubits());
  reference.apply_circuit_range(c, plan, 0, gates);
  const StateVector expected = reference.gather();

  const std::size_t stride = 7;  // co-prime with the gate count: ragged tail
  for (std::size_t kill = stride; kill <= gates; kill += stride) {
    // Run [0, kill), snapshot, "lose the node", resume on a fresh register.
    SimComm comm_a(ranks);
    DistStateVector victim(n, &comm_a);
    victim.apply_circuit_range(c, plan, 0, kill);
    const DistSnapshot snap = victim.snapshot(kill);

    SimComm comm_b(ranks);
    DistStateVector resumed(n, &comm_b);
    resumed.restore(snap);
    resumed.apply_circuit_range(c, plan, kill, gates);

    const StateVector state = resumed.gather();
    ASSERT_EQ(state.dim(), expected.dim());
    // Bit-identical, not approximately equal: the resume replays the same
    // kernels over the same amplitudes in the same layout.
    EXPECT_EQ(std::memcmp(state.data(), expected.data(),
                          expected.dim() * sizeof(cplx)),
              0)
        << "ranks " << ranks << " kill point " << kill;
  }
}

TEST_P(DistResume, ResumeThroughDiskCheckpointIsBitIdentical) {
  const int ranks = GetParam();
  const int n = 6;
  const std::string path =
      "test_ckpt_resume_" + std::to_string(ranks) + ".json";
  std::remove(path.c_str());
  Rng rng(555 + static_cast<std::uint64_t>(ranks));
  const std::size_t gates = 30;
  const Circuit c = random_circuit(n, gates, rng);

  SimComm ref_comm(ranks);
  DistStateVector reference(n, &ref_comm);
  const LayoutPlan plan = plan_layout(c, n, reference.local_qubits());
  reference.apply_circuit_range(c, plan, 0, gates);
  const StateVector expected = reference.gather();

  const std::size_t kill = gates / 2;
  {
    SimComm comm(ranks);
    DistStateVector victim(n, &comm);
    victim.apply_circuit_range(c, plan, 0, kill);
    write_dist_checkpoint(path, victim.snapshot(kill));
  }  // the victim register is gone; only the checkpoint file survives

  SimComm comm(ranks);
  DistStateVector resumed(n, &comm);
  resumed.restore(read_dist_checkpoint(path));
  resumed.apply_circuit_range(c, plan, kill, gates);
  const StateVector state = resumed.gather();
  EXPECT_EQ(std::memcmp(state.data(), expected.data(),
                        expected.dim() * sizeof(cplx)),
            0);
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(RankSweep, DistResume, ::testing::Values(2, 4, 8));

// -- In-backend checkpoint-replay recovery -----------------------------------

TEST(DistBackendRecovery, AbsorbsCommFailureByCheckpointReplay) {
  Rng rng(77);
  const Circuit c = random_circuit(6, 60, rng);

  runtime::DistBackendOptions options;
  options.comm_deadline = std::chrono::milliseconds(20);
  options.checkpoint_every = 5;
  runtime::DistStateVectorBackend clean(4, 16, options);
  const StateVector expected = clean.run_circuit(c);
  ASSERT_GT(clean.comm_stats().amplitudes_exchanged, 0u)
      << "circuit must exercise the comm layer for the fault to land";

  runtime::DistStateVectorBackend faulty(4, 16, options);
  FaultPlan plan;
  FaultRule r = rule("comm.exchange", FaultKind::kStall);
  r.stall = std::chrono::milliseconds(5000);  // way past the 20 ms deadline
  r.at_invocations = {3};                     // mid-circuit, one-shot
  plan.rules = {r};
  StateVector survived(0);
  {
    ScopedFaultPlan guard(std::move(plan));
    survived = faulty.run_circuit(c);
  }

  const runtime::RecoveryInfo recovery = faulty.last_recovery();
  EXPECT_EQ(recovery.recoveries, 1u);
  EXPECT_EQ(recovery.path, "checkpoint_replay");
  EXPECT_LE(recovery.replayed_gates, options.checkpoint_every);
  EXPECT_GE(faulty.comm().deadline_exceeded_count(), 1u);

  // The recovered run is bit-identical to the fault-free one.
  ASSERT_EQ(survived.dim(), expected.dim());
  EXPECT_EQ(std::memcmp(survived.data(), expected.data(),
                        expected.dim() * sizeof(cplx)),
            0);
}

TEST(DistBackendRecovery, PropagatesCommFailureAfterMaxRecoveries) {
  Rng rng(78);
  const Circuit c = random_circuit(6, 40, rng);

  runtime::DistBackendOptions options;
  options.comm_deadline = std::chrono::milliseconds(5);
  options.max_recoveries = 1;
  runtime::DistStateVectorBackend backend(4, 16, options);

  FaultPlan plan;
  FaultRule r = rule("comm.exchange", FaultKind::kStall);
  r.stall = std::chrono::milliseconds(5000);
  r.probability = 1.0;  // every exchange stalls: recovery cannot help
  plan.rules = {r};
  ScopedFaultPlan guard(std::move(plan));

  EXPECT_THROW(backend.run_circuit(c), CommFailure);
  EXPECT_EQ(backend.last_recovery().recoveries, 1u);  // it did try
}

TEST(DistBackendRecovery, ResetRecoveryRecordBetweenJobs) {
  Rng rng(79);
  const Circuit c = random_circuit(6, 50, rng);
  runtime::DistBackendOptions options;
  options.comm_deadline = std::chrono::milliseconds(20);
  options.checkpoint_every = 5;
  runtime::DistStateVectorBackend backend(4, 16, options);

  {
    FaultPlan plan;
    FaultRule r = rule("comm.exchange", FaultKind::kStall);
    r.stall = std::chrono::milliseconds(5000);
    r.at_invocations = {2};
    plan.rules = {r};
    ScopedFaultPlan guard(std::move(plan));
    (void)backend.run_circuit(c);
  }
  ASSERT_EQ(backend.last_recovery().recoveries, 1u);

  // A clean follow-up job reports a clean record.
  (void)backend.run_circuit(c);
  EXPECT_EQ(backend.last_recovery().recoveries, 0u);
  EXPECT_TRUE(backend.last_recovery().path.empty());
}

// -- Seeded chaos schedule (tools/run_fault_matrix.sh distributed tier) ------

// One randomized rank-failure schedule per VQSIM_FAULT_SEED: a mix of
// deadline-busting stalls and permanent rank deaths at seeded invocation
// indices of the exchange site, across 2/4/8 ranks. Every schedule must end
// in a completed job whose final state is bit-identical to the fault-free
// run — the chaos harness's terminal-success + bit-identity gate, replayed
// under the fault matrix's sanitizer build.
TEST(DistChaos, SeededRankFailureScheduleCompletesBitIdentically) {
  std::uint64_t seed = 42;
  if (const char* env = std::getenv("VQSIM_FAULT_SEED"); env && *env)
    seed = std::strtoull(env, nullptr, 10);

  Rng circuit_rng(303);
  const Circuit c = random_circuit(6, 50, circuit_rng);
  for (const int ranks : {2, 4, 8}) {
    runtime::DistBackendOptions options;
    options.comm_deadline = std::chrono::milliseconds(15);
    options.max_recoveries = 8;
    runtime::DistStateVectorBackend clean(ranks, 16, options);
    const StateVector expected = clean.run_circuit(c);

    FaultPlan plan;
    plan.seed = seed;
    Rng rng(seed + static_cast<std::uint64_t>(ranks));
    for (int e = 0; e < 3; ++e) {
      FaultRule r = rule("comm.exchange", rng.uniform() < 0.5
                                              ? FaultKind::kStall
                                              : FaultKind::kPermanent);
      if (r.kind == FaultKind::kStall)
        r.stall = std::chrono::milliseconds(
            50 + static_cast<int>(rng.uniform_index(100)));
      r.at_invocations = {rng.uniform_index(40)};
      plan.rules.push_back(std::move(r));
    }
    ScopedFaultPlan guard(std::move(plan));

    runtime::DistStateVectorBackend backend(ranks, 16, options);
    StateVector survived(1);
    ASSERT_NO_THROW(survived = backend.run_circuit(c))
        << "ranks " << ranks << " seed " << seed;
    ASSERT_EQ(survived.dim(), expected.dim());
    EXPECT_EQ(std::memcmp(survived.data(), expected.data(),
                          expected.dim() * sizeof(cplx)),
              0)
        << "ranks " << ranks << " seed " << seed;
  }
}

// -- Pool-level degraded-mode failover ---------------------------------------

TEST(PoolDegradedFailover, CommFailureTripsBreakerAndFailsOverToStatevector) {
  Rng rng(80);
  const Circuit c = random_circuit(6, 50, rng);
  StateVector expected(6);
  expected.apply_circuit(c);

  runtime::DistBackendOptions options;
  options.comm_deadline = std::chrono::milliseconds(5);
  options.max_recoveries = 0;  // first CommFailure escapes to the pool
  std::vector<std::unique_ptr<runtime::QpuBackend>> fleet;
  fleet.push_back(
      std::make_unique<runtime::DistStateVectorBackend>(4, 16, options));
  fleet.push_back(std::make_unique<runtime::StateVectorBackend>(16));
  runtime::VirtualQpuPool pool(std::move(fleet), /*workers=*/2);
  // Pin the tripped breaker open for the whole test so the degraded state
  // is observable after the jobs drain.
  resilience::CircuitBreakerPolicy breaker;
  breaker.open_duration = std::chrono::seconds(120);
  pool.set_breaker_policy(breaker);

  FaultPlan plan;
  FaultRule r = rule("comm.exchange", FaultKind::kStall);
  r.stall = std::chrono::milliseconds(5000);
  r.probability = 1.0;  // the dist backend cannot complete any job
  plan.rules = {r};
  ScopedFaultPlan guard(std::move(plan));

  // Two identical jobs through a paused pool: the first dispatch grabs the
  // cheaper statevector QPU, the second is forced onto the distributed one
  // — where the rank failure fires.
  pool.pause_dispatch();
  std::future<StateVector> f0 = pool.submit_circuit(c);
  std::future<StateVector> f1 = pool.submit_circuit(c);
  pool.resume_dispatch();

  const StateVector s0 = f0.get();
  const StateVector s1 = f1.get();
  pool.wait_all();

  // Both jobs completed (one after failover) with the exact sv result.
  EXPECT_EQ(std::memcmp(s0.data(), expected.data(),
                        expected.dim() * sizeof(cplx)),
            0);
  EXPECT_EQ(std::memcmp(s1.data(), expected.data(),
                        expected.dim() * sizeof(cplx)),
            0);

  const runtime::PoolCounters counters = pool.counters();
  EXPECT_EQ(counters.jobs_failed, 0u);
  EXPECT_EQ(counters.degraded_failovers, 1u);
  EXPECT_GE(counters.breaker_open_events, 1u);

  // The failed-over job's record names the recovery path and the failed
  // distributed attempt.
  bool saw_failover = false;
  for (const runtime::JobTelemetry& record : pool.telemetry()) {
    if (record.recovery_path != "failover") continue;
    saw_failover = true;
    EXPECT_FALSE(record.failed);
    EXPECT_EQ(record.attempts, 2);
    EXPECT_EQ(record.backend_name, "statevector");
    ASSERT_EQ(record.backend_history.size(), 1u);
    EXPECT_EQ(record.backend_history[0], 0);  // the dist backend
  }
  EXPECT_TRUE(saw_failover);

  // The snapshot reports the distributed backend degraded (breaker OPEN)
  // and carries the qubit capacity the serve layer sheds against.
  const runtime::PoolStats stats = pool.stats();
  ASSERT_EQ(stats.backends.size(), 2u);
  EXPECT_TRUE(stats.backends[0].degraded);
  EXPECT_EQ(stats.backends[0].breaker, resilience::BreakerState::kOpen);
  EXPECT_FALSE(stats.backends[1].degraded);
  EXPECT_EQ(stats.backends[0].max_qubits, 16);
  EXPECT_EQ(stats.open_breakers, 1);

  // The comm layer counted the deadline misses that drove all of this.
  const auto* dist_backend =
      dynamic_cast<const runtime::DistStateVectorBackend*>(&pool.qpu(0));
  ASSERT_NE(dist_backend, nullptr);
  EXPECT_GE(dist_backend->comm().deadline_exceeded_count(), 1u);
}

}  // namespace
}  // namespace vqsim
