// AVX2 instantiation of the kernel table. Compiled only when the
// VQSIM_SIMD cmake probe passes, with -mavx2 -mfma -ffp-contract=off.
//
// Bit-identity with the scalar table rests on two facts:
//  * The intrinsic complex multiply below uses only mul/add/sub/addsub —
//    never a fused multiply-add — and IEEE mul/add are commutative
//    including signed zeros, so each lane computes exactly the scalar
//    expression (mr*ar - mi*ai, mr*ai + mi*ar) with the same roundings.
//  * Everything not hand-vectorized here (the generated folded kernels,
//    diagonal lanes, K > 1 bodies) is the same kernel_impl.inc code the
//    scalar TU compiles; auto-vectorization is semantics-preserving at
//    these flags, it just runs the identical arithmetic wider.

#include <immintrin.h>

#include "kernels/kernel_prelude.hpp"

namespace vqsim::kernels {
namespace avx2_impl {

#include "kernels/kernel_impl.inc"

// [x0, x1] complex in a __m256d as [r0, i0, r1, i1], times the constant
// (mr, mi) broadcast as mrv = set1(mr), miv = set1(mi):
//   even lanes: r*mr - i*mi, odd lanes: i*mr + r*mi
// — term order matches cmul(m, x) exactly.
inline __m256d cmul_const(__m256d x, __m256d mrv, __m256d miv) {
  const __m256d xs = _mm256_permute_pd(x, 0b0101);  // [i0, r0, i1, r1]
  return _mm256_addsub_pd(_mm256_mul_pd(x, mrv), _mm256_mul_pd(xs, miv));
}

inline __m256d load2(const cplx* p) {
  return _mm256_loadu_pd(reinterpret_cast<const double*>(p));
}

inline void store2(cplx* p, __m256d v) {
  _mm256_storeu_pd(reinterpret_cast<double*>(p), v);
}

idx mat2_simd(cplx* a, idx dim, std::size_t K, unsigned q, const cplx* m) {
  const idx stride = pow2(q);
  if (K != 1) return mat2(a, dim, K, q, m);
  const __m256d m00r = _mm256_set1_pd(m[0].real());
  const __m256d m00i = _mm256_set1_pd(m[0].imag());
  const __m256d m01r = _mm256_set1_pd(m[1].real());
  const __m256d m01i = _mm256_set1_pd(m[1].imag());
  const __m256d m10r = _mm256_set1_pd(m[2].real());
  const __m256d m10i = _mm256_set1_pd(m[2].imag());
  const __m256d m11r = _mm256_set1_pd(m[3].real());
  const __m256d m11i = _mm256_set1_pd(m[3].imag());
  if (stride >= 2) {
    parallel_for(
        dim / 2 / stride,
        [&](idx blk) {
          cplx* p0 = a + 2 * blk * stride;
          cplx* p1 = p0 + stride;
          for (idx j = 0; j < stride; j += 2) {
            const __m256d x0 = load2(p0 + j);
            const __m256d x1 = load2(p1 + j);
            store2(p0 + j, _mm256_add_pd(cmul_const(x0, m00r, m00i),
                                         cmul_const(x1, m01r, m01i)));
            store2(p1 + j, _mm256_add_pd(cmul_const(x0, m10r, m10i),
                                         cmul_const(x1, m11r, m11i)));
          }
        },
        lane_grain(stride));
    return dim;
  }
  // q = 0: each pair is contiguous as [a0, a1] in one vector; duplicate
  // each half across the register and blend the two rows' constants.
  const __m256d c0r = _mm256_set_pd(m[2].real(), m[2].real(), m[0].real(),
                                    m[0].real());
  const __m256d c0i = _mm256_set_pd(m[2].imag(), m[2].imag(), m[0].imag(),
                                    m[0].imag());
  const __m256d c1r = _mm256_set_pd(m[3].real(), m[3].real(), m[1].real(),
                                    m[1].real());
  const __m256d c1i = _mm256_set_pd(m[3].imag(), m[3].imag(), m[1].imag(),
                                    m[1].imag());
  parallel_for(
      dim / 2,
      [&](idx pr) {
        cplx* p = a + 2 * pr;
        const __m256d x = load2(p);
        const __m256d d0 = _mm256_permute2f128_pd(x, x, 0x00);  // [a0, a0]
        const __m256d d1 = _mm256_permute2f128_pd(x, x, 0x11);  // [a1, a1]
        store2(p, _mm256_add_pd(cmul_const(d0, c0r, c0i),
                                cmul_const(d1, c1r, c1i)));
      },
      lane_grain(1));
  return dim;
}

idx cmat2_simd(cplx* a, idx dim, std::size_t K, unsigned qc, unsigned qt,
               const cplx* m) {
  const idx cbit = pow2(qc);
  const idx tbit = pow2(qt);
  const idx lo = cbit < tbit ? cbit : tbit;
  if (K != 1 || lo < 2) return cmat2(a, dim, K, qc, qt, m);
  const __m256d m00r = _mm256_set1_pd(m[0].real());
  const __m256d m00i = _mm256_set1_pd(m[0].imag());
  const __m256d m01r = _mm256_set1_pd(m[1].real());
  const __m256d m01i = _mm256_set1_pd(m[1].imag());
  const __m256d m10r = _mm256_set1_pd(m[2].real());
  const __m256d m10i = _mm256_set1_pd(m[2].imag());
  const __m256d m11r = _mm256_set1_pd(m[3].real());
  const __m256d m11i = _mm256_set1_pd(m[3].imag());
  parallel_for(
      dim / 4 / lo,
      [&](idx blk) {
        const idx base = insert_two_zero_bits(blk * lo, qc, qt) | cbit;
        cplx* p0 = a + base;
        cplx* p1 = a + (base | tbit);
        for (idx j = 0; j < lo; j += 2) {
          const __m256d x0 = load2(p0 + j);
          const __m256d x1 = load2(p1 + j);
          store2(p0 + j, _mm256_add_pd(cmul_const(x0, m00r, m00i),
                                       cmul_const(x1, m01r, m01i)));
          store2(p1 + j, _mm256_add_pd(cmul_const(x0, m10r, m10i),
                                       cmul_const(x1, m11r, m11i)));
        }
      },
      lane_grain(lo));
  return dim / 2;
}

idx mat4_simd(cplx* a, idx dim, std::size_t K, unsigned q0, unsigned q1,
              const cplx* m) {
  const idx s0 = pow2(q0);
  const idx s1 = pow2(q1);
  const idx lo = s0 < s1 ? s0 : s1;
  if (K != 1 || lo < 2) return mat4(a, dim, K, q0, q1, m);
  __m256d mr[16], mi[16];
  for (int e = 0; e < 16; ++e) {
    mr[e] = _mm256_set1_pd(m[e].real());
    mi[e] = _mm256_set1_pd(m[e].imag());
  }
  parallel_for(
      dim / 4 / lo,
      [&](idx blk) {
        const idx base = insert_two_zero_bits(blk * lo, q0, q1);
        cplx* p0 = a + base;
        cplx* p1 = a + (base | s0);
        cplx* p2 = a + (base | s1);
        cplx* p3 = a + (base | s0 | s1);
        for (idx j = 0; j < lo; j += 2) {
          const __m256d x0 = load2(p0 + j);
          const __m256d x1 = load2(p1 + j);
          const __m256d x2 = load2(p2 + j);
          const __m256d x3 = load2(p3 + j);
          store2(p0 + j,
                 _mm256_add_pd(
                     _mm256_add_pd(_mm256_add_pd(cmul_const(x0, mr[0], mi[0]),
                                                 cmul_const(x1, mr[1], mi[1])),
                                   cmul_const(x2, mr[2], mi[2])),
                     cmul_const(x3, mr[3], mi[3])));
          store2(p1 + j,
                 _mm256_add_pd(
                     _mm256_add_pd(_mm256_add_pd(cmul_const(x0, mr[4], mi[4]),
                                                 cmul_const(x1, mr[5], mi[5])),
                                   cmul_const(x2, mr[6], mi[6])),
                     cmul_const(x3, mr[7], mi[7])));
          store2(p2 + j,
                 _mm256_add_pd(
                     _mm256_add_pd(_mm256_add_pd(cmul_const(x0, mr[8], mi[8]),
                                                 cmul_const(x1, mr[9], mi[9])),
                                   cmul_const(x2, mr[10], mi[10])),
                     cmul_const(x3, mr[11], mi[11])));
          store2(p3 + j,
                 _mm256_add_pd(
                     _mm256_add_pd(_mm256_add_pd(cmul_const(x0, mr[12], mi[12]),
                                                 cmul_const(x1, mr[13], mi[13])),
                                   cmul_const(x2, mr[14], mi[14])),
                     cmul_const(x3, mr[15], mi[15])));
        }
      },
      lane_grain(lo));
  return dim;
}

idx diag_mask_simd(cplx* a, idx dim, std::size_t K, std::uint64_t mask,
                   const cplx* e) {
  const int nb = std::popcount(mask);
  const unsigned b0 = static_cast<unsigned>(std::countr_zero(mask));
  const idx run = pow2(b0);
  if (K != 1 || run < 2 || nb > 2) return diag_mask(a, dim, K, mask, e);
  const __m256d er = _mm256_set1_pd(e[0].real());
  const __m256d ei = _mm256_set1_pd(e[0].imag());
  if (nb == 1) {
    parallel_for(
        dim / 2 / run,
        [&](idx blk) {
          cplx* p = a + (insert_zero_bit(blk * run, b0) | run);
          for (idx j = 0; j < run; j += 2)
            store2(p + j, cmul_const(load2(p + j), er, ei));
        },
        lane_grain(run));
    return dim / 2;
  }
  const std::uint64_t rest = mask & (mask - 1);
  const unsigned b1 = static_cast<unsigned>(std::countr_zero(rest));
  parallel_for(
      dim / 4 / run,
      [&](idx blk) {
        cplx* p = a + (insert_two_zero_bits(blk * run, b0, b1) | mask);
        for (idx j = 0; j < run; j += 2)
          store2(p + j, cmul_const(load2(p + j), er, ei));
      },
      lane_grain(run));
  return dim / 4;
}

idx scale_simd(cplx* a, idx dim, std::size_t K, const cplx* e) {
  if (K != 1 || dim < 2) return scale(a, dim, K, e);
  const __m256d er = _mm256_set1_pd(e[0].real());
  const __m256d ei = _mm256_set1_pd(e[0].imag());
  parallel_for(
      dim / 2,
      [&](idx pr) {
        cplx* p = a + 2 * pr;
        store2(p, cmul_const(load2(p), er, ei));
      },
      lane_grain(1));
  return dim;
}

}  // namespace avx2_impl

const KernelTable& avx2_table() {
  static const KernelTable t = [] {
    KernelTable tt = avx2_impl::make_table("avx2");
    tt.mat2 = &avx2_impl::mat2_simd;
    tt.cmat2 = &avx2_impl::cmat2_simd;
    tt.mat4 = &avx2_impl::mat4_simd;
    tt.diag_mask = &avx2_impl::diag_mask_simd;
    tt.scale = &avx2_impl::scale_simd;
    return tt;
  }();
  return t;
}

}  // namespace vqsim::kernels
