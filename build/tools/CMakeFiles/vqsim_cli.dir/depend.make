# Empty dependencies file for vqsim_cli.
# This may be replaced when dependencies are built.
