// Simulated communicator for the distributed state-vector backend.
//
// The paper's NWQ-Sim runs multi-node on Perlmutter/Summit over MPI/NVSHMEM
// (the SV-Sim PGAS design). This environment has no interconnect, so the
// communicator executes rank exchanges in-process while preserving the
// *logic* real transports require: explicit staging buffers (no aliasing of
// remote memory), pairwise exchanges, reduction trees, and traffic
// accounting.  DESIGN.md documents this substitution.
//
// Traffic counters are wait-free sharded atomics (telemetry/sharded.hpp):
// the old mutex-guarded CommStats serialized every exchange through one
// lock, which is exactly the hot path a gate over the global register hits
// num_ranks/2 times per gate. stats() sums the shards without blocking
// writers; the same totals are mirrored into the global MetricsRegistry
// ("comm.*" series) when telemetry hooks are compiled in.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "telemetry/sharded.hpp"

namespace vqsim {

struct CommStats {
  std::uint64_t point_to_point_messages = 0;
  std::uint64_t amplitudes_exchanged = 0;
  std::uint64_t allreduces = 0;
};

class SimComm {
 public:
  /// `num_ranks` must be a power of two (rank bits extend the qubit index).
  explicit SimComm(int num_ranks);

  int num_ranks() const { return num_ranks_; }
  int rank_bits() const { return rank_bits_; }

  /// Pairwise exchange: rank_a's payload and rank_b's payload swap places,
  /// as if each side posted a send and a receive of equal size.
  void exchange(int rank_a, std::vector<cplx>& payload_a, int rank_b,
                std::vector<cplx>& payload_b);

  /// Sum one double contribution from every rank (models MPI_Allreduce).
  double allreduce_sum(const std::vector<double>& per_rank);
  cplx allreduce_sum(const std::vector<cplx>& per_rank);

  /// Snapshot of the traffic counters (relaxed shard sums: never blocks
  /// communicating threads; exact once they are quiescent).
  CommStats stats() const {
    return {messages_.value(), amplitudes_.value(), allreduces_.value()};
  }
  void reset_stats() {
    messages_.reset();
    amplitudes_.reset();
    allreduces_.reset();
  }

 private:
  void check_rank(int rank) const;

  int num_ranks_ = 1;
  int rank_bits_ = 0;
  telemetry::ShardedCounter messages_;
  telemetry::ShardedCounter amplitudes_;
  telemetry::ShardedCounter allreduces_;
};

}  // namespace vqsim
