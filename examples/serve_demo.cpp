// Multi-tenant simulation service: two tenants share one virtual-QPU fleet
// through vqsim::serve.
//
//   $ ./serve_demo
//
// An "interactive" tenant (high priority, small concurrency quota) and a
// "batch" tenant (low priority, rate-limited) both sweep the H2/STO-3G
// bond-angle parameter grid through SimService. The second sweep of the
// same grid — by the *other* tenant — is served from the content-addressed
// result cache: identical (circuit, observable, context) requests never
// reach the pool twice, and the energies are bit-identical.

#include <chrono>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "chem/jordan_wigner.hpp"
#include "chem/molecules.hpp"
#include "runtime/virtual_qpu.hpp"
#include "serve/service.hpp"
#include "vqe/ansatz.hpp"

int main() {
  using namespace vqsim;

  const MolecularIntegrals h2 = h2_sto3g();
  const PauliSum hamiltonian = jordan_wigner(molecular_hamiltonian(h2));
  const UccsdAnsatzAdapter ansatz(2 * h2.norb, h2.nelec);

  // One fleet, two tenants with different contracts.
  runtime::VirtualQpuPool pool = runtime::make_statevector_pool(4, 4, 8);
  serve::TenantRegistry tenants;
  {
    serve::TenantConfig interactive;
    interactive.name = "interactive";
    interactive.priority = runtime::JobPriority::kHigh;
    interactive.max_in_flight = 2;
    tenants.add(interactive);
    serve::TenantConfig batch;
    batch.name = "batch";
    batch.priority = runtime::JobPriority::kLow;
    batch.rate = serve::TokenBucketPolicy{/*capacity=*/64.0,
                                          /*refill_per_second=*/32.0};
    tenants.add(batch);
  }
  serve::SimService service(pool, tenants);

  // A parameter sweep: vary the last UCCSD amplitude (the HOMO->LUMO
  // double excitation) over a grid, all other amplitudes zero.
  std::vector<std::vector<double>> grid;
  for (int i = 0; i < 16; ++i) {
    std::vector<double> theta(ansatz.num_parameters(), 0.0);
    theta.back() = -0.22 + 0.01 * i;
    grid.push_back(std::move(theta));
  }

  // Client-side backpressure idiom: AdmissionRejected is the service
  // saying "not now" — on a quota rejection, wait for the oldest
  // outstanding result and retry; on a rate rejection, back off briefly.
  const auto sweep = [&](const char* tenant) {
    std::vector<std::shared_future<double>> futures;
    std::size_t drain = 0;
    for (const auto& theta : grid) {
      for (;;) {
        try {
          futures.push_back(
              service.submit_energy(tenant, ansatz, hamiltonian, theta));
          break;
        } catch (const serve::AdmissionRejected&) {
          if (drain < futures.size())
            futures[drain++].wait();
          else
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
      }
    }
    std::vector<double> energies;
    for (auto& f : futures) energies.push_back(f.get());
    return energies;
  };

  std::printf("H2/STO-3G UCCSD sweep, %zu points, 4 virtual QPUs\n\n",
              grid.size());
  const std::vector<double> first = sweep("interactive");
  const std::vector<double> second = sweep("batch");  // same grid, other tenant

  double best = first[0];
  for (double e : first) best = std::min(best, e);
  std::printf("best energy on the grid   : %+.8f Ha\n", best);

  bool identical = true;
  for (std::size_t i = 0; i < first.size(); ++i)
    identical = identical && first[i] == second[i];
  std::printf("second sweep bit-identical: %s\n", identical ? "yes" : "NO");

  const serve::ServiceStats stats = service.stats();
  std::printf("pool executions           : %llu (of %llu admitted requests)\n",
              static_cast<unsigned long long>(stats.executed),
              static_cast<unsigned long long>(stats.admitted));
  std::printf("cache hits / coalesced    : %llu / %llu\n",
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.coalesced));
  for (const serve::TenantAdmissionStats& t : stats.tenants)
    std::printf("tenant %-12s        : %llu requests, %llu executed, "
                "%llu cached, high-water %zu in flight\n",
                t.name.c_str(),
                static_cast<unsigned long long>(t.requests),
                static_cast<unsigned long long>(t.executed),
                static_cast<unsigned long long>(t.cache_hits + t.coalesced),
                t.in_flight_high_water);
  return identical ? 0 : 1;
}
