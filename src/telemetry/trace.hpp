// Span tracer — nestable RAII spans into per-thread ring buffers, exported
// as Chrome trace-event JSON (open the file in Perfetto / chrome://tracing).
//
// Design for the disabled-but-compiled-in case (the common one): enabled()
// is a single relaxed atomic load, and an inactive Span constructor does
// nothing else — no clock read, no allocation. When tracing is on, each
// thread records complete events ('ph':'X') into its own fixed-capacity
// ring buffer with no locking; the ring overwrites its oldest events when
// full (dropped count reported in the export), so a runaway trace degrades
// to "most recent window" instead of unbounded memory.
//
// Enablement: programmatic (Tracer::start/stop_and_write) or the
// VQSIM_TRACE=<path> environment variable, which turns tracing on at load
// and flushes the file at process exit. The exported JSON carries the
// global MetricsRegistry snapshot under "metrics" alongside "traceEvents".
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace vqsim::telemetry {

struct TraceEvent {
  std::string name;
  const char* category = "";  // must point at a string literal
  char phase = 'X';           // 'X' complete, 'i' instant
  std::uint64_t ts_ns = 0;    // since process trace epoch
  std::uint64_t dur_ns = 0;   // 'X' only
  std::uint32_t tid = 0;
  std::string args_json;      // pre-serialized {"k":v,...} or empty
};

class Tracer {
 public:
  /// Fast path for every instrumentation site.
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Enable collection; events buffer in memory until a write call. A path
  /// given here (or via VQSIM_TRACE) is flushed automatically at exit.
  static void start(std::string path = {});
  /// Disable collection and, when a path is known, write the trace file.
  static void stop_and_write();
  /// Disable collection and discard everything buffered so far.
  static void stop_and_discard();

  /// Serialize the Chrome trace JSON (plus metrics snapshot) to `out`.
  static void write(std::ostream& out);
  /// Events currently buffered across all threads (approximate while
  /// writers are active). Test support.
  static std::size_t buffered_events();
  /// Events overwritten because a ring filled.
  static std::uint64_t dropped_events();
  static void clear();

  /// Record an instant event ('i'). args_json is spliced verbatim into the
  /// event's "args" object; pass "" for none.
  static void instant(const char* category, std::string_view name,
                      std::string args_json = {});

  /// Nanoseconds since the process trace epoch.
  static std::uint64_t now_ns();

 private:
  friend class Span;
  static void record(TraceEvent event);
  static std::atomic<bool> enabled_;
};

/// RAII complete-event span. Construction snapshots the clock when tracing
/// is enabled; destruction records the event into the calling thread's
/// ring. Spans nest by scope, which is exactly Chrome's stacking rule for
/// same-thread 'X' events.
class Span {
 public:
  Span(const char* category, std::string_view name)
      : active_(Tracer::enabled()) {
    if (!active_) return;
    category_ = category;
    name_ = name;
    start_ns_ = Tracer::now_ns();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach pre-serialized JSON object members ({"k":v} content without the
  /// braces is NOT accepted — pass the full object, e.g. via JsonWriter).
  void set_args(std::string args_json) {
    if (active_) args_json_ = std::move(args_json);
  }

  bool active() const { return active_; }

  ~Span() {
    if (!active_) return;
    TraceEvent e;
    e.name = std::move(name_);
    e.category = category_;
    e.phase = 'X';
    e.ts_ns = start_ns_;
    e.dur_ns = Tracer::now_ns() - start_ns_;
    e.args_json = std::move(args_json_);
    Tracer::record(std::move(e));
  }

 private:
  bool active_;
  const char* category_ = "";
  std::string name_;
  std::string args_json_;
  std::uint64_t start_ns_ = 0;
};

}  // namespace vqsim::telemetry
