#include "telemetry/metrics.hpp"

#include <algorithm>
#include <stdexcept>

#include "telemetry/json_writer.hpp"

namespace vqsim::telemetry {

const std::vector<double>& default_time_buckets() {
  static const std::vector<double> buckets = [] {
    std::vector<double> b;
    for (double decade = 1e-6; decade < 1e2 * 1.5; decade *= 10) {
      b.push_back(decade);
      b.push_back(2 * decade);
      b.push_back(5 * decade);
    }
    b.resize(b.size() - 2);  // stop at 1e2
    return b;
  }();
  return buckets;
}

double HistogramSnapshot::percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 100.0);
  const double target = q / 100.0 * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const std::uint64_t in_bucket = counts[b];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) < target) {
      cumulative += in_bucket;
      continue;
    }
    // Target rank falls in bucket b. +Inf bucket clamps to the last finite
    // bound (we cannot interpolate into an unbounded interval).
    if (b >= bounds.size()) return bounds.empty() ? 0.0 : bounds.back();
    const double lo = b == 0 ? 0.0 : bounds[b - 1];
    const double hi = bounds[b];
    const double frac =
        (target - static_cast<double>(cumulative)) /
        static_cast<double>(in_bucket);
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty())
    throw std::invalid_argument("Histogram: need at least one bucket bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    if (!(bounds_[i - 1] < bounds_[i]))
      throw std::invalid_argument(
          "Histogram: bounds must be strictly increasing");
  cells_ = std::vector<std::atomic<std::uint64_t>>(
      kShards * (bounds_.size() + 1));
}

void Histogram::observe(double v) {
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  const std::size_t columns = bounds_.size() + 1;
  cells_[this_thread_shard() * columns + bucket].fetch_add(
      1, std::memory_order_relaxed);
  count_.inc();
  sum_.add(v);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.bounds = bounds_;
  const std::size_t columns = bounds_.size() + 1;
  s.counts.assign(columns, 0);
  for (std::size_t shard = 0; shard < kShards; ++shard)
    for (std::size_t b = 0; b < columns; ++b)
      s.counts[b] +=
          cells_[shard * columns + b].load(std::memory_order_relaxed);
  s.count = count_.value();
  s.sum = sum_.value();
  return s;
}

void Histogram::reset() {
  for (auto& c : cells_) c.store(0, std::memory_order_relaxed);
  count_.reset();
  sum_.reset();
}

MetricsRegistry& MetricsRegistry::global() {
  // Immortal for the same reason as default_qpu_pool(): instrumentation in
  // static destructors (pool teardown) must find it alive.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  MutexLock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  MutexLock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      const std::vector<double>& bounds) {
  MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(bounds))
             .first;
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot s;
  MutexLock lock(mutex_);
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_)
    s.counters.push_back({name, c->value()});
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_)
    s.gauges.push_back({name, g->value(), g->high_water()});
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs = h->snapshot();
    hs.name = name;
    s.histograms.push_back(std::move(hs));
  }
  return s;
}

void MetricsRegistry::reset() {
  MutexLock lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

namespace {

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*; we map '.' and any
/// other outsider to '_' and prefix the exporter namespace.
std::string prometheus_name(std::string_view name) {
  std::string out = "vqsim_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string MetricsSnapshot::to_prometheus() const {
  std::string out;
  for (const CounterSnapshot& c : counters) {
    const std::string n = prometheus_name(c.name);
    out += "# TYPE " + n + " counter\n";
    out += n + " " + std::to_string(c.value) + "\n";
  }
  for (const GaugeSnapshot& g : gauges) {
    const std::string n = prometheus_name(g.name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " " + std::to_string(g.value) + "\n";
    out += "# TYPE " + n + "_high_water gauge\n";
    out += n + "_high_water " + std::to_string(g.high_water) + "\n";
  }
  for (const HistogramSnapshot& h : histograms) {
    const std::string n = prometheus_name(h.name);
    out += "# TYPE " + n + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      cumulative += h.counts[b];
      const std::string le =
          b < h.bounds.size() ? json_number(h.bounds[b]) : "+Inf";
      out += n + "_bucket{le=\"" + le + "\"} " + std::to_string(cumulative) +
             "\n";
    }
    out += n + "_sum " + json_number(h.sum) + "\n";
    out += n + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

std::string MetricsSnapshot::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const CounterSnapshot& c : counters) {
    w.key(c.name);
    w.value(c.value);
  }
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const GaugeSnapshot& g : gauges) {
    w.key(g.name);
    w.begin_object();
    w.key("value");
    w.value(static_cast<std::int64_t>(g.value));
    w.key("high_water");
    w.value(static_cast<std::int64_t>(g.high_water));
    w.end_object();
  }
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const HistogramSnapshot& h : histograms) {
    w.key(h.name);
    w.begin_object();
    w.key("count");
    w.value(h.count);
    w.key("sum");
    w.value(h.sum);
    w.key("mean");
    w.value(h.mean());
    w.key("p50");
    w.value(h.percentile(50));
    w.key("p90");
    w.value(h.percentile(90));
    w.key("p99");
    w.value(h.percentile(99));
    w.key("buckets");
    w.begin_array();
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      w.begin_object();
      w.key("le");
      if (b < h.bounds.size())
        w.value(h.bounds[b]);
      else
        w.value("+Inf");
      w.key("count");
      w.value(h.counts[b]);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.take();
}

}  // namespace vqsim::telemetry
