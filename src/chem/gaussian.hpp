// Gaussian-basis molecular integrals for s-type (STO-3G) bases.
//
// A real ab-initio substrate: contracted s-type Gaussians with analytic
// overlap / kinetic / nuclear-attraction / electron-repulsion integrals
// (Boys-function closed forms). Covers H/He-like centers — enough for the
// H2, H3+, H4, HeH+ family on which the VQE literature (and this paper's
// validation layer) runs, and enough to generate potential-energy surfaces
// for the warm-start experiments of §6.2.
#pragma once

#include <array>
#include <vector>

#include "common/types.hpp"

namespace vqsim {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;
};

/// Squared Euclidean distance.
double distance_squared(const Vec3& a, const Vec3& b);

/// An atom: nuclear charge plus the Slater exponent zeta of its 1s STO-3G
/// shell (H: 1.24, He in HeH+: 2.0925 — Szabo-Ostlund conventions).
struct Atom {
  Vec3 position;   // bohr
  double charge = 1.0;
  double zeta = 1.24;
};

/// One contracted s-type basis function (three primitives for STO-3G).
struct ContractedGaussian {
  Vec3 center;
  std::array<double, 3> exponents{};
  std::array<double, 3> coefficients{};  // include primitive normalization
};

/// The STO-3G 1s contraction for Slater exponent `zeta` at `center`.
ContractedGaussian sto3g_1s(const Vec3& center, double zeta);

/// Boys function F0(t) = (1/2) sqrt(pi/t) erf(sqrt(t)), F0(0) = 1.
double boys_f0(double t);

/// Contracted integrals.
double overlap(const ContractedGaussian& a, const ContractedGaussian& b);
double kinetic(const ContractedGaussian& a, const ContractedGaussian& b);
/// Nuclear attraction to a unit charge at `nucleus` (multiply by -Z).
double nuclear_attraction(const ContractedGaussian& a,
                          const ContractedGaussian& b, const Vec3& nucleus);
/// Chemist-notation (ab|cd) electron repulsion integral.
double electron_repulsion(const ContractedGaussian& a,
                          const ContractedGaussian& b,
                          const ContractedGaussian& c,
                          const ContractedGaussian& d);

/// Assembled atomic-orbital matrices for a molecule (one 1s function per
/// atom).
struct AoIntegrals {
  int nao = 0;
  double nuclear_repulsion = 0.0;
  std::vector<double> overlap;   // nao^2
  std::vector<double> core;      // nao^2: kinetic + nuclear attraction
  std::vector<double> eri;       // nao^4, chemist (pq|rs)

  double s(int p, int q) const { return overlap[idx2(p, q)]; }
  double h(int p, int q) const { return core[idx2(p, q)]; }
  double g(int p, int q, int r, int s) const {
    return eri[idx4(p, q, r, s)];
  }

  std::size_t idx2(int p, int q) const {
    return static_cast<std::size_t>(p) * static_cast<std::size_t>(nao) +
           static_cast<std::size_t>(q);
  }
  std::size_t idx4(int p, int q, int r, int s) const {
    const auto n = static_cast<std::size_t>(nao);
    return ((static_cast<std::size_t>(p) * n + static_cast<std::size_t>(q)) *
                n +
            static_cast<std::size_t>(r)) *
               n +
           static_cast<std::size_t>(s);
  }
};

/// Compute all AO integrals for the molecule.
AoIntegrals compute_ao_integrals(const std::vector<Atom>& atoms);

/// Convenience geometries (bond lengths in bohr).
std::vector<Atom> h2_geometry(double bond_length);
std::vector<Atom> h4_chain_geometry(double spacing);
std::vector<Atom> heh_plus_geometry(double bond_length);

}  // namespace vqsim
