#include "vqe/executor.hpp"

#include <stdexcept>
#include <vector>

#include "analyze/verifier.hpp"
#include "common/bits.hpp"
#include "pauli/basis_change.hpp"
#include "sim/expectation.hpp"
#include "sim/sampler.hpp"
#include "telemetry/telemetry.hpp"

namespace vqsim {

std::size_t basis_rotation_gate_count(const PauliString& s) {
  std::size_t n = 0;
  for (int q = 0; q < PauliString::kMaxQubits; ++q) {
    switch (s.axis(q)) {
      case PauliAxis::kX:
        n += 1;  // H
        break;
      case PauliAxis::kY:
        n += 2;  // Sdg, H
        break;
      default:
        break;
    }
  }
  return n;
}

EnergyEvaluationModel model_energy_evaluation(const Ansatz& ansatz,
                                              const PauliSum& observable) {
  EnergyEvaluationModel m;
  m.ansatz_gates = ansatz.gate_count();
  m.num_terms = observable.size();
  for (const PauliTerm& t : observable.terms())
    m.basis_gates_terms += basis_rotation_gate_count(t.string);
  const auto groups = group_qubitwise_commuting(observable);
  m.num_groups = groups.size();
  for (const MeasurementGroup& g : groups)
    m.basis_gates_groups += basis_rotation_gate_count(g.basis);
  return m;
}

SimulatorExecutor::SimulatorExecutor(const Ansatz& ansatz,
                                     PauliSum observable,
                                     ExecutorOptions options)
    : ansatz_(ansatz),
      observable_(std::move(observable)),
      groups_(group_qubitwise_commuting(observable_)),
      options_(options),
      psi_(ansatz.num_qubits()),
      rng_(options.seed) {
  if (observable_.num_qubits() > ansatz.num_qubits())
    throw std::invalid_argument(
        "SimulatorExecutor: observable register exceeds ansatz");
  if (options_.compiled_cache) {
    // One compile per circuit *shape*: every executor sharing the cache
    // (e.g. each point of a PES sweep) reuses the same plan. Compilation
    // verifies the representative circuit, so the separate verify pass is
    // redundant here; the plan's diagnostics are surfaced in its place.
    const std::vector<double> theta0(ansatz.num_parameters(), 0.0);
    plan_ = options_.compiled_cache->get_or_compile(ansatz.circuit(theta0));
    ansatz_diagnostics_.assign(plan_->diagnostics().begin(),
                               plan_->diagnostics().end());
    return;
  }
  if (options_.verify_ansatz) {
    // Verified once per circuit structure, not per parameter set. Lint
    // passes stay off: rotations legitimately vanish at particular theta
    // (the verification point is all-zeros).
    analyze::VerifyOptions verify_options;
    verify_options.lint = false;
    const std::vector<double> theta0(ansatz.num_parameters(), 0.0);
    ansatz_diagnostics_ =
        analyze::verify_circuit(ansatz.circuit(theta0), verify_options);
    analyze::throw_if_errors(
        ansatz_diagnostics_,
        "SimulatorExecutor: ansatz circuit failed static verification");
  }
}

void SimulatorExecutor::run_ansatz(std::span<const double> theta) {
  if (plan_) {
    psi_.reset();
    exec::apply_ops(psi_, plan_->bind(ansatz_.circuit(theta)));
  } else {
    ansatz_.prepare(&psi_, theta);
  }
  ++stats_.ansatz_executions;
  stats_.ansatz_gates += ansatz_.gate_count();
  VQSIM_COUNTER(c_ansatz, "vqe.ansatz_executions_total");
  VQSIM_COUNTER_INC(c_ansatz);
}

double SimulatorExecutor::evaluate(std::span<const double> theta) {
  if (theta.size() != ansatz_.num_parameters())
    throw std::invalid_argument("SimulatorExecutor: parameter count");
  ++stats_.energy_evaluations;
  VQSIM_SPAN(/*cat=*/"vqe", "energy_evaluation");
  VQSIM_COUNTER(c_evals, "vqe.energy_evaluations_total");
  VQSIM_COUNTER_INC(c_evals);

  if (options_.mode == ExpectationMode::kDirect &&
      options_.cache_ansatz_state) {
    run_ansatz(theta);
    return evaluate_direct();
  }
  return evaluate_grouped(theta);
}

double SimulatorExecutor::evaluate_direct() {
  // All term expectations read the single cached post-ansatz state (§4.1.4);
  // no measurement circuits are executed at all (§4.2).
  return expectation(psi_, observable_);
}

double SimulatorExecutor::evaluate_grouped(std::span<const double> theta) {
  double energy = 0.0;
  const int nq = ansatz_.num_qubits();

  const bool cached = options_.cache_ansatz_state;
  if (cached) run_ansatz(theta);

  for (const MeasurementGroup& group : groups_) {
    StateVector work(nq);
    if (cached) {
      work = psi_;  // reuse the resident post-ansatz state
    } else {
      ansatz_.prepare(&work, theta);  // non-caching baseline re-preparation
      ++stats_.ansatz_executions;
      stats_.ansatz_gates += ansatz_.gate_count();
    }

    const Circuit rotation = basis_change_circuit(group.basis, nq);
    work.apply_circuit(rotation);
    stats_.basis_rotation_gates += rotation.size();

    if (options_.mode == ExpectationMode::kSampling) {
      stats_.shots += options_.shots;
      // One shot batch serves every term in the group: record the sampled
      // basis states once, then evaluate each term's parity mask on them.
      const std::vector<idx> samples =
          sample_states(work, options_.shots, rng_);
      for (std::size_t ti : group.term_indices) {
        const PauliTerm& t = observable_[ti];
        if (t.string.is_identity()) {
          energy += t.coefficient.real();
          continue;
        }
        const std::uint64_t mask = z_mask_after_rotation(t.string);
        std::int64_t acc = 0;
        for (idx s : samples) acc += parity(s & mask) ? -1 : 1;
        energy += t.coefficient.real() * static_cast<double>(acc) /
                  static_cast<double>(options_.shots);
      }
    } else {
      for (std::size_t ti : group.term_indices) {
        const PauliTerm& t = observable_[ti];
        if (t.string.is_identity()) {
          energy += t.coefficient.real();
          continue;
        }
        energy += t.coefficient.real() *
                  expectation_z_mask(work, z_mask_after_rotation(t.string));
      }
    }
  }

  return energy;
}

}  // namespace vqsim
