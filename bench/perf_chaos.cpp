// Chaos harness for the distributed backend's rank-failure tolerance
// (DESIGN.md §14). Three gated phases, each emitting BENCH rows into
// BENCH_chaos.json; any violated gate exits non-zero.
//
// (a) Chaos sweep: one VQE energy evaluation (UCCSD ansatz) at 2/4/8
//     simulated ranks under seeded fault schedules — stalls past the comm
//     deadline and outright rank deaths on the exchange/inbox sites. Gates:
//     100% terminal success (every injected schedule ends in a completed
//     job, absorbed by shard-checkpoint replay), the recovered energy is
//     BIT-IDENTICAL to the fault-free run, and the recovery overhead stays
//     inside the cost model's bound (replays + deadline sleeps + slack).
// (b) Deadline ablation: the same 1.5 s mid-circuit stall against a
//     deadlined backend and the un-deadlined control. The control
//     demonstrates the failure mode this PR removes — it blocks for the
//     full stall — while the deadlined run cuts the straggler off and
//     recovers in a fraction of that.
// (c) Degraded-mode failover: a mixed [dist, statevector] pool where every
//     collective on the dist backend stalls terminally. The job that lands
//     there must trip the breaker, fail over, and return the statevector
//     backend's exact amplitudes; the pool must count one degraded
//     failover and report the dist backend degraded.
//
// `--quick` trims the sweep (2/4 ranks, two seeds) for CI smoke runs.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "bench_emit.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "dist/comm.hpp"
#include "resilience/fault_injection.hpp"
#include "runtime/virtual_qpu.hpp"
#include "sim/state_vector.hpp"
#include "vqe/ansatz.hpp"

namespace {

using namespace vqsim;
using resilience::FaultKind;
using resilience::FaultPlan;
using resilience::FaultRule;
using resilience::ScopedFaultPlan;

// Pauli sum touching both local and rank-axis qubits so the distributed
// readout (inbox exchanges + allreduce) is inside the blast radius.
PauliSum chaos_observable(int num_qubits) {
  PauliSum h(num_qubits);
  const auto term = [&](double coeff, int q0, char a0, int q1, char a1) {
    std::string spec(static_cast<std::size_t>(num_qubits), 'I');
    spec[static_cast<std::size_t>(q0)] = a0;
    spec[static_cast<std::size_t>(q1)] = a1;
    h.add_term(coeff, spec);
  };
  term(0.7, 0, 'Z', 1, 'Z');
  term(-0.4, 0, 'X', num_qubits - 1, 'X');
  term(0.2, num_qubits - 2, 'Z', num_qubits - 1, 'Z');
  term(0.5, num_qubits / 2, 'Y', num_qubits / 2 + 1, 'Y');
  return h;
}

/// Seeded fault schedule: `events` one-shot faults at random invocation
/// indices of the comm fault sites, mixing deadline-busting stalls with
/// permanent rank deaths. One-shot triggers guarantee termination: a
/// replayed exchange advances the site counter past the scheduled index,
/// so each event fires at most once per process arm.
FaultPlan chaos_schedule(std::uint64_t seed, int events) {
  Rng rng(seed);
  FaultPlan plan;
  plan.seed = seed;
  for (int e = 0; e < events; ++e) {
    FaultRule r;
    r.site = rng.uniform() < 0.75 ? "comm.exchange" : "comm.inbox";
    if (rng.uniform() < 0.5) {
      r.kind = FaultKind::kStall;
      r.stall = std::chrono::milliseconds(
          200 + static_cast<int>(rng.uniform_index(300)));
    } else {
      r.kind = FaultKind::kPermanent;
    }
    r.at_invocations = {rng.uniform_index(60)};
    plan.rules.push_back(std::move(r));
  }
  return plan;
}

int run_chaos_sweep(bench::BenchEmitter& emitter, bool quick) {
  const UccsdAnsatzAdapter ansatz(10, 4);
  const PauliSum h = chaos_observable(ansatz.num_qubits());
  Rng rng(5);
  std::vector<double> theta(ansatz.num_parameters());
  for (double& t : theta) t = rng.uniform(-0.2, 0.2);

  const std::vector<int> rank_sweep = quick ? std::vector<int>{2, 4}
                                            : std::vector<int>{2, 4, 8};
  const std::vector<std::uint64_t> seeds =
      quick ? std::vector<std::uint64_t>{1, 7}
            : std::vector<std::uint64_t>{1, 7, 42, 20240805, 987654321};
  const auto deadline = std::chrono::milliseconds(20);
  const int events = quick ? 2 : 3;

  int failures = 0;
  for (const int ranks : rank_sweep) {
    runtime::DistBackendOptions options;
    options.comm_deadline = deadline;
    options.max_recoveries = 10;  // every schedule has <= `events` faults

    // Fault-free reference on an identically configured backend: same
    // checkpoint stride, same comm schedule, same arithmetic.
    runtime::DistStateVectorBackend clean(ranks, 16, options);
    WallTimer clean_timer;
    const double reference = clean.energy(ansatz, h, theta);
    const double wall_clean = clean_timer.seconds();

    for (const std::uint64_t seed : seeds) {
      runtime::DistStateVectorBackend backend(ranks, 16, options);
      bool completed = false;
      double energy = 0.0;
      double wall = 0.0;
      {
        ScopedFaultPlan guard(chaos_schedule(seed, events));
        WallTimer timer;
        try {
          energy = backend.energy(ansatz, h, theta);
          completed = true;
        } catch (const std::exception& e) {
          std::fprintf(stderr, "CHAOS FAILURE: ranks=%d seed=%llu: %s\n",
                       ranks, static_cast<unsigned long long>(seed),
                       e.what());
        }
        wall = timer.seconds();
      }

      const runtime::RecoveryInfo recovery = backend.last_recovery();
      const bool bit_identical = completed && energy == reference;
      // Overhead bound: each recovery replays at most one full circuit and
      // sleeps at most one deadline; everything past that (plus scheduler
      // slack) is unexplained time the gate rejects.
      const double bound =
          (1.0 + static_cast<double>(recovery.recoveries)) * wall_clean +
          static_cast<double>(recovery.recoveries) *
              (static_cast<double>(deadline.count()) / 1e3) +
          1.0;
      const bool overhead_ok = wall <= bound;

      if (!completed || !bit_identical || !overhead_ok) ++failures;
      emitter.row()
          .field("phase", "chaos_sweep")
          .field("ranks", ranks)
          .field("seed", seed)
          .field("completed", completed)
          .field("bit_identical", bit_identical)
          .field("energy", energy)
          .field("recoveries", recovery.recoveries)
          .field("replayed_gates", recovery.replayed_gates)
          .field("deadline_exceeded", backend.comm().deadline_exceeded_count())
          .field("rank_failures", backend.comm().rank_failures_count())
          .field("wall_s", wall, "%.6f")
          .field("wall_clean_s", wall_clean, "%.6f")
          .field("overhead_bound_s", bound, "%.6f")
          .field("overhead_ok", overhead_ok)
          .emit();
    }
  }
  return failures;
}

int run_deadline_ablation(bench::BenchEmitter& emitter) {
  const UccsdAnsatzAdapter ansatz(8, 4);
  const PauliSum h = chaos_observable(ansatz.num_qubits());
  Rng rng(9);
  std::vector<double> theta(ansatz.num_parameters());
  for (double& t : theta) t = rng.uniform(-0.2, 0.2);

  const auto stall = std::chrono::milliseconds(1500);
  int failures = 0;
  double walls[2] = {0.0, 0.0};
  for (const bool deadlined : {true, false}) {
    runtime::DistBackendOptions options;
    options.comm_deadline =
        deadlined ? std::chrono::milliseconds(25) : std::chrono::milliseconds(0);
    options.max_recoveries = 2;
    runtime::DistStateVectorBackend backend(4, 16, options);

    FaultPlan plan;
    FaultRule r;
    r.site = "comm.exchange";
    r.kind = FaultKind::kStall;
    r.stall = stall;
    r.at_invocations = {4};
    plan.rules.push_back(r);
    ScopedFaultPlan guard(std::move(plan));

    WallTimer timer;
    const double energy = backend.energy(ansatz, h, theta);
    const double wall = timer.seconds();
    walls[deadlined ? 0 : 1] = wall;

    // The control must actually block for the stall (the hang this PR's
    // deadline protocol converts into a bounded recovery); the deadlined
    // run must finish well under it.
    const bool ok = deadlined ? wall < 1.0 : wall >= 1.5;
    if (!ok) ++failures;
    emitter.row()
        .field("phase", "deadline_ablation")
        .field("deadlined", deadlined)
        .field("stall_ms", static_cast<std::int64_t>(stall.count()))
        .field("energy", energy)
        .field("recoveries", backend.last_recovery().recoveries)
        .field("wall_s", wall, "%.6f")
        .field("gate_ok", ok)
        .emit();
  }
  if (failures == 0)
    std::printf("# deadline cut a %.2fs hang down to %.3fs\n", walls[1],
                walls[0]);
  return failures;
}

int run_failover_gate(bench::BenchEmitter& emitter) {
  Rng rng(13);
  Circuit circuit(8);
  for (int i = 0; i < 48; ++i) {
    const int q0 = static_cast<int>(rng.uniform_index(8));
    int q1 = q0;
    while (q1 == q0) q1 = static_cast<int>(rng.uniform_index(8));
    if (rng.uniform() < 0.4)
      circuit.cx(q0, q1);
    else
      circuit.u3(rng.uniform(-3, 3), rng.uniform(-3, 3), rng.uniform(-3, 3),
                 q0);
  }
  StateVector expected(8);
  expected.apply_circuit(circuit);

  runtime::DistBackendOptions options;
  options.comm_deadline = std::chrono::milliseconds(5);
  options.max_recoveries = 0;  // the first CommFailure escapes to the pool
  std::vector<std::unique_ptr<runtime::QpuBackend>> fleet;
  fleet.push_back(
      std::make_unique<runtime::DistStateVectorBackend>(4, 16, options));
  fleet.push_back(std::make_unique<runtime::StateVectorBackend>(16));
  runtime::VirtualQpuPool pool(std::move(fleet), 2);

  FaultPlan plan;
  FaultRule r;
  r.site = "comm.exchange";
  r.kind = FaultKind::kStall;
  r.stall = std::chrono::milliseconds(5000);
  r.probability = 1.0;  // the dist backend cannot finish any job
  plan.rules.push_back(r);
  ScopedFaultPlan guard(std::move(plan));

  // Two identical jobs through a paused pool: the first dispatch takes the
  // cheaper statevector backend, forcing the second onto the distributed
  // one, where the injected rank failure fires.
  pool.pause_dispatch();
  auto f0 = pool.submit_circuit(circuit);
  auto f1 = pool.submit_circuit(circuit);
  pool.resume_dispatch();
  const StateVector s0 = f0.get();
  const StateVector s1 = f1.get();
  pool.wait_all();

  const bool bits_ok =
      std::memcmp(s0.data(), expected.data(),
                  expected.dim() * sizeof(cplx)) == 0 &&
      std::memcmp(s1.data(), expected.data(),
                  expected.dim() * sizeof(cplx)) == 0;
  const runtime::PoolCounters counters = pool.counters();
  std::uint64_t replayed = 0;
  bool saw_failover = false;
  for (const runtime::JobTelemetry& t : pool.telemetry()) {
    if (t.recovery_path == "failover") saw_failover = true;
    replayed += t.replayed_gates;
  }
  const runtime::PoolStats stats = pool.stats();
  const bool ok = bits_ok && counters.jobs_failed == 0 &&
                  counters.degraded_failovers == 1 && saw_failover &&
                  stats.backends.size() == 2 && stats.backends[0].degraded;

  emitter.row()
      .field("phase", "degraded_failover")
      .field("bit_identical", bits_ok)
      .field("jobs_failed", counters.jobs_failed)
      .field("degraded_failovers", counters.degraded_failovers)
      .field("breaker_open_events", counters.breaker_open_events)
      .field("replayed_gates", replayed)
      .field("dist_degraded",
             stats.backends.size() == 2 && stats.backends[0].degraded)
      .field("gate_ok", ok)
      .emit();
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--quick") quick = true;

  std::printf("# perf_chaos: rank-failure tolerance gates%s\n",
              quick ? " (quick)" : "");
  bench::BenchEmitter emitter("chaos");

  int failures = 0;
  failures += run_chaos_sweep(emitter, quick);
  failures += run_deadline_ablation(emitter);
  failures += run_failover_gate(emitter);

  if (failures > 0) {
    std::fprintf(stderr, "perf_chaos: %d gate(s) FAILED\n", failures);
    return EXIT_FAILURE;
  }
  std::printf("# perf_chaos: all gates passed\n");
  return EXIT_SUCCESS;
}
