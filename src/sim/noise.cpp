#include "sim/noise.hpp"

#include <cmath>
#include <stdexcept>

#include "sim/expectation.hpp"

namespace vqsim {
namespace {

void apply_depolarizing(StateVector* psi, int qubit, double p, Rng& rng) {
  if (rng.uniform() >= p) return;
  const double which = rng.uniform();
  const PauliAxis axis = which < 1.0 / 3.0   ? PauliAxis::kX
                         : which < 2.0 / 3.0 ? PauliAxis::kY
                                             : PauliAxis::kZ;
  psi->apply_pauli(PauliString::single_axis(axis, qubit));
}

// Amplitude damping via Kraus sampling:
//   K0 = [[1, 0], [0, sqrt(1-g)]],  K1 = [[0, sqrt(g)], [0, 0]].
// Branch K1 fires with probability g * P(qubit = 1); each branch is applied
// and renormalized.
void apply_damping(StateVector* psi, int qubit, double gamma, Rng& rng) {
  const double p1 = psi->probability_one(qubit);
  const double p_decay = gamma * p1;
  Mat2 k;
  if (rng.uniform() < p_decay) {
    k(0, 1) = std::sqrt(gamma);
  } else {
    k(0, 0) = 1.0;
    k(1, 1) = std::sqrt(1.0 - gamma);
  }
  psi->apply_mat2(k, qubit);
  psi->normalize();
}

}  // namespace

void apply_noisy_circuit(StateVector* psi, const Circuit& circuit,
                         const NoiseModel& model, Rng& rng) {
  if (psi == nullptr) throw std::invalid_argument("apply_noisy_circuit");
  for (const Gate& g : circuit.gates()) {
    psi->apply_gate(g);
    if (model.is_noiseless()) continue;
    for (int q : {g.q0, g.q1}) {
      if (q < 0) continue;
      if (model.depolarizing > 0.0)
        apply_depolarizing(psi, q, model.depolarizing, rng);
      if (model.damping > 0.0) apply_damping(psi, q, model.damping, rng);
    }
  }
}

double noisy_expectation(const Circuit& circuit, const PauliSum& observable,
                         const NoiseModel& model, std::size_t trajectories,
                         Rng& rng) {
  if (trajectories == 0)
    throw std::invalid_argument("noisy_expectation: zero trajectories");
  double acc = 0.0;
  for (std::size_t t = 0; t < trajectories; ++t) {
    StateVector psi(circuit.num_qubits());
    apply_noisy_circuit(&psi, circuit, model, rng);
    acc += expectation(psi, observable);
  }
  return acc / static_cast<double>(trajectories);
}

}  // namespace vqsim
