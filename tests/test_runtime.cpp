#include <atomic>
#include <future>
#include <limits>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "analyze/diagnostic.hpp"
#include "chem/jordan_wigner.hpp"
#include "chem/molecules.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "runtime/backend.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/virtual_qpu.hpp"
#include "sim/density_matrix.hpp"
#include "sim/expectation.hpp"
#include "vqe/async_evaluator.hpp"
#include "vqe/batch.hpp"
#include "vqe/executor.hpp"

namespace vqsim {
namespace {

using runtime::BackendCaps;
using runtime::DensityMatrixBackend;
using runtime::DistStateVectorBackend;
using runtime::JobOptions;
using runtime::JobPriority;
using runtime::JobTelemetry;
using runtime::QpuBackend;
using runtime::StabilizerBackend;
using runtime::StateVectorBackend;
using runtime::ThreadPool;
using runtime::VirtualQpuPool;

using analyze::DiagCode;
using analyze::VerificationError;

bool has_code(const std::vector<analyze::Diagnostic>& diagnostics,
              DiagCode code) {
  for (const analyze::Diagnostic& d : diagnostics)
    if (d.code == code) return true;
  return false;
}

// -- ThreadPool --------------------------------------------------------------

TEST(ThreadPool, FuturesCarryResults) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i)
    futures.push_back(pool.submit([i] { return i * i; }));
  for (int i = 0; i < 64; ++i) EXPECT_EQ(futures[i].get(), i * i);
  EXPECT_EQ(pool.tasks_executed(), 64u);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.submit(
      []() -> int { throw std::runtime_error("job failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, NestedSubmissionCompletes) {
  ThreadPool pool(2);
  auto outer = pool.submit([&pool] {
    // Fire-and-record nested tasks; do NOT block on their futures from
    // inside a worker.
    auto counter = std::make_shared<std::atomic<int>>(0);
    for (int i = 0; i < 8; ++i)
      pool.submit([counter] { counter->fetch_add(1); });
    return counter;
  });
  auto counter = outer.get();
  pool.wait_idle();
  EXPECT_EQ(counter->load(), 8);
}

TEST(ThreadPool, WorkersAreMarkedForNestedParallelGuard) {
  EXPECT_FALSE(ThreadPool::in_worker());
  ThreadPool pool(2);
  auto flag = pool.submit([] { return ThreadPool::in_worker(); });
  EXPECT_TRUE(flag.get());
  EXPECT_FALSE(ThreadPool::in_worker());
}

TEST(ThreadPool, GracefulShutdownDrainsQueuedTasks) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 32; ++i)
      pool.submit([&executed] { executed.fetch_add(1); });
    // Destructor must run every queued task before joining.
  }
  EXPECT_EQ(executed.load(), 32);
}

TEST(ParallelFor2d, CoversRectangleSeriallyAndInWorkerScope) {
  std::vector<int> hits(6 * 4, 0);
  parallel_for_2d(6, 4, [&](std::uint64_t r, std::uint64_t c) {
    ++hits[r * 4 + c];
  });
  for (int h : hits) EXPECT_EQ(h, 1);

  PoolWorkerScope scope;  // forces the serial fallback path
  EXPECT_TRUE(in_pool_worker());
  std::fill(hits.begin(), hits.end(), 0);
  parallel_for_2d(
      6, 4, [&](std::uint64_t r, std::uint64_t c) { ++hits[r * 4 + c]; },
      /*grain=*/1);
  for (int h : hits) EXPECT_EQ(h, 1);
}

// -- VirtualQpuPool: determinism and parity ----------------------------------

struct H2Fixture {
  PauliSum h = jordan_wigner(molecular_hamiltonian(h2_sto3g()));
  UccsdAnsatzAdapter ansatz{4, 2};

  std::vector<std::vector<double>> parameter_sets(int count,
                                                  std::uint64_t seed) const {
    Rng rng(seed);
    std::vector<std::vector<double>> sets;
    for (int i = 0; i < count; ++i) {
      std::vector<double> theta(ansatz.num_parameters());
      for (double& t : theta) t = rng.uniform(-0.5, 0.5);
      sets.push_back(std::move(theta));
    }
    return sets;
  }
};

TEST(VirtualQpuPool, EnergiesBitIdenticalToSequentialExecutorAcrossWorkers) {
  H2Fixture f;
  const auto sets = f.parameter_sets(16, 901);

  // Sequential reference: the SimulatorExecutor direct path.
  std::vector<double> reference;
  {
    SimulatorExecutor exec(f.ansatz, f.h);
    for (const auto& theta : sets) reference.push_back(exec.evaluate(theta));
  }

  for (int workers : {1, 2, 8}) {
    VirtualQpuPool pool =
        runtime::make_statevector_pool(workers, workers, 28);
    std::vector<std::future<double>> futures;
    for (const auto& theta : sets)
      futures.push_back(pool.submit_energy(f.ansatz, f.h, theta));
    for (std::size_t i = 0; i < sets.size(); ++i) {
      const double e = futures[i].get();
      // Bit-identical, not just close: jobs are pure and in-worker OpenMP
      // regions are serialized, so worker count cannot perturb the result.
      EXPECT_EQ(e, reference[i]) << "workers=" << workers << " entry=" << i;
    }
    pool.wait_all();  // futures resolve before the counters are bumped
    const auto counters = pool.counters();
    EXPECT_EQ(counters.jobs_submitted, sets.size());
    EXPECT_EQ(counters.jobs_completed, sets.size());
    EXPECT_EQ(counters.jobs_failed, 0u);
  }
}

TEST(VirtualQpuPool, BatchedEvaluationMatchesDirectExpectation) {
  H2Fixture f;
  const auto sets = f.parameter_sets(12, 903);
  VirtualQpuPool pool = runtime::make_statevector_pool(2, 2, 28);
  const std::vector<double> energies =
      evaluate_batch(f.ansatz, f.h, sets, &pool);
  ASSERT_EQ(energies.size(), sets.size());
  StateVector psi(4);
  for (std::size_t i = 0; i < sets.size(); ++i) {
    f.ansatz.prepare(&psi, sets[i]);
    EXPECT_EQ(energies[i], expectation(psi, f.h)) << i;
  }
}

TEST(VirtualQpuPool, NestedBatchFromWorkerContextRunsInline) {
  H2Fixture f;
  const auto sets = f.parameter_sets(4, 905);
  const std::vector<double> outside = evaluate_batch(f.ansatz, f.h, sets);
  PoolWorkerScope scope;  // simulate being inside a pool job
  const std::vector<double> inside = evaluate_batch(f.ansatz, f.h, sets);
  for (std::size_t i = 0; i < sets.size(); ++i)
    EXPECT_EQ(outside[i], inside[i]) << i;
}

// -- Capability dispatch -----------------------------------------------------

std::vector<std::unique_ptr<QpuBackend>> mixed_fleet() {
  std::vector<std::unique_ptr<QpuBackend>> fleet;
  fleet.push_back(std::make_unique<StateVectorBackend>(20));
  fleet.push_back(std::make_unique<DensityMatrixBackend>(8));
  return fleet;
}

TEST(VirtualQpuPool, NoisyJobRoutesToDensityMatrixBackend) {
  VirtualQpuPool pool(mixed_fleet(), 2);

  Circuit c(1);
  c.x(0);
  PauliSum z(1);
  z.add_term(1.0, "Z");

  JobOptions noisy;
  noisy.noise.depolarizing = 0.3;
  const double value =
      pool.submit_expectation(c, z, noisy).get();
  // One depolarizing channel after X on |0>: <Z> = (1 - 4p/3) * (-1).
  EXPECT_NEAR(value, -(1.0 - 4.0 * 0.3 / 3.0), 1e-12);

  pool.wait_all();  // the future resolves before the telemetry record lands
  const std::vector<JobTelemetry> log = pool.telemetry();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].backend_name, "density_matrix");
  EXPECT_FALSE(log[0].failed);

  // A noiseless job prefers the first capable QPU: the state vector.
  const double exact = pool.submit_expectation(c, z).get();
  EXPECT_EQ(exact, -1.0);
  pool.wait_all();
  EXPECT_EQ(pool.telemetry().back().backend_name, "statevector");
}

TEST(VirtualQpuPool, CliffordJobRoutesToStabilizerBackend) {
  std::vector<std::unique_ptr<QpuBackend>> fleet;
  fleet.push_back(std::make_unique<StabilizerBackend>(32));
  VirtualQpuPool pool(std::move(fleet), 1);

  Circuit bell(2);
  bell.h(0).cx(0, 1);
  PauliSum zz(2);
  zz.add_term(1.0, "ZZ");

  // Unflagged all-Clifford jobs auto-route: property inference proves the
  // circuit Clifford, so the caller's clifford_only promise is not needed.
  EXPECT_EQ(pool.submit_expectation(bell, zz).get(), 1.0);
  pool.wait_all();
  {
    const JobTelemetry record = pool.telemetry().back();
    EXPECT_EQ(record.backend_name, "stabilizer");
    EXPECT_TRUE(record.auto_clifford);
    EXPECT_TRUE(has_code(record.warnings, DiagCode::kAutoCliffordRoutable));
  }

  // An explicit promise still works; auto_clifford stays false because the
  // routing came from the caller, not the inference.
  JobOptions clifford;
  clifford.clifford_only = true;
  EXPECT_EQ(pool.submit_expectation(bell, zz, clifford).get(), 1.0);
  pool.wait_all();
  EXPECT_EQ(pool.telemetry().back().backend_name, "stabilizer");
  EXPECT_FALSE(pool.telemetry().back().auto_clifford);

  // One T gate defeats the inference: the unflagged job has nowhere to run
  // in this stabilizer-only fleet, and the rejection names its DiagCode.
  Circuit magic(2);
  magic.h(0).t(0).cx(0, 1);
  try {
    pool.submit_expectation(magic, zz);
    FAIL() << "expected rejection";
  } catch (const VerificationError& e) {
    EXPECT_TRUE(has_code(e.diagnostics(), DiagCode::kNoCapableBackend));
    const std::string message = e.what();
    EXPECT_NE(message.find("[no_capable_backend]"), std::string::npos)
        << message;
  }
}

TEST(VirtualQpuPool, DistributedBackendMatchesSharedMemory) {
  std::vector<std::unique_ptr<QpuBackend>> fleet;
  fleet.push_back(std::make_unique<DistStateVectorBackend>(4, 16));
  VirtualQpuPool pool(std::move(fleet), 1);

  Circuit c(5);
  c.h(0).cx(0, 1).cx(1, 4).rz(0.7, 4).cx(0, 3);
  PauliSum h(5);
  h.add_term(0.8, "ZIIIZ");
  h.add_term(-0.3, "XIIIX");

  StateVector reference(5);
  reference.apply_circuit(c);

  EXPECT_NEAR(pool.submit_expectation(c, h).get(),
              expectation(reference, h), 1e-10);

  const StateVector state = pool.submit_circuit(c).get();
  for (idx i = 0; i < reference.dim(); ++i)
    EXPECT_NEAR(std::abs(state.data()[i] - reference.data()[i]), 0.0, 1e-11);
}

TEST(VirtualQpuPool, OverCapacityJobRejectedWithClearError) {
  VirtualQpuPool pool(mixed_fleet(), 1);  // state vector capped at 20 qubits
  Circuit big(24);
  big.h(0);
  PauliSum obs(24);
  obs.add_term(1.0, "ZIIIIIIIIIIIIIIIIIIIIIII");
  try {
    pool.submit_expectation(big, obs);
    FAIL() << "expected rejection";
  } catch (const VerificationError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("no backend"), std::string::npos) << message;
    EXPECT_NE(message.find("24 qubits"), std::string::npos) << message;
    // Structured taxonomy: the summary error plus one note per backend
    // explaining exactly which capability failed.
    EXPECT_TRUE(has_code(e.diagnostics(), DiagCode::kNoCapableBackend));
    EXPECT_TRUE(has_code(e.diagnostics(), DiagCode::kRegisterTooLarge));
  }

  // Noise beyond the density-matrix ceiling (8 qubits) is also infeasible.
  Circuit mid(12);
  mid.h(0);
  PauliSum obs12(12);
  obs12.add_term(1.0, "ZIIIIIIIIIII");
  JobOptions noisy;
  noisy.noise.damping = 0.1;
  EXPECT_THROW(pool.submit_expectation(mid, obs12, noisy),
               std::invalid_argument);
}

TEST(VirtualQpuPool, NonCliffordJobRejectedAtSubmitWithDiagnostic) {
  std::vector<std::unique_ptr<QpuBackend>> fleet;
  fleet.push_back(std::make_unique<StabilizerBackend>(8));
  VirtualQpuPool pool(std::move(fleet), 1);

  Circuit non_clifford(1);
  non_clifford.t(0);
  PauliSum z(1);
  z.add_term(1.0, "Z");
  JobOptions clifford;
  clifford.clifford_only = true;  // promise the verifier can refute
  try {
    pool.submit_expectation(non_clifford, z, clifford);
    FAIL() << "expected submit-time rejection";
  } catch (const VerificationError& e) {
    EXPECT_TRUE(has_code(e.diagnostics(), DiagCode::kNonCliffordGate))
        << e.what();
  }
  // Rejected before enqueue: nothing was submitted, nothing executed.
  EXPECT_EQ(pool.counters().jobs_submitted, 0u);
  EXPECT_EQ(pool.counters().jobs_failed, 0u);
  EXPECT_TRUE(pool.telemetry().empty());
}

TEST(VirtualQpuPool, MalformedCircuitRejectedAtSubmit) {
  VirtualQpuPool pool = runtime::make_statevector_pool(1, 1, 8);
  Circuit bad(1);
  bad.rz(std::numeric_limits<double>::quiet_NaN(), 0);
  PauliSum z(1);
  z.add_term(1.0, "Z");
  try {
    pool.submit_expectation(bad, z);
    FAIL() << "expected submit-time rejection";
  } catch (const VerificationError& e) {
    EXPECT_TRUE(has_code(e.diagnostics(), DiagCode::kNonFiniteParameter))
        << e.what();
  }
  EXPECT_EQ(pool.counters().jobs_submitted, 0u);
}

TEST(VirtualQpuPool, SubmitTimeWarningsRideOnTelemetry) {
  VirtualQpuPool pool = runtime::make_statevector_pool(1, 1, 8);
  Circuit redundant(1);
  redundant.h(0).h(0);  // executable, but lints as a cancelling pair
  PauliSum z(1);
  z.add_term(1.0, "Z");
  EXPECT_NEAR(pool.submit_expectation(redundant, z).get(), 1.0, 1e-12);
  pool.wait_all();
  const std::vector<JobTelemetry> log = pool.telemetry();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_FALSE(log[0].failed);
  EXPECT_EQ(log[0].attempts, 1);           // clean first-attempt success
  EXPECT_TRUE(log[0].error_message.empty());
  EXPECT_TRUE(has_code(log[0].warnings, DiagCode::kCancellingPair));
}

TEST(VirtualQpuPool, ExecutionTimeErrorsArriveThroughFuture) {
  // Energy jobs carry no circuit at submit time (the ansatz materializes per
  // theta inside the backend), so a broken Clifford promise only surfaces at
  // execution — through the future, with the failure recorded in telemetry.
  std::vector<std::unique_ptr<QpuBackend>> fleet;
  fleet.push_back(std::make_unique<StabilizerBackend>(8));
  VirtualQpuPool pool(std::move(fleet), 1);

  HardwareEfficientAnsatz ansatz(2, 1);
  PauliSum z(2);
  z.add_term(1.0, "ZI");
  std::vector<double> theta(ansatz.num_parameters(), 0.3);  // non-Clifford
  JobOptions lie;
  lie.clifford_only = true;  // promise broken at execution time
  auto f = pool.submit_energy(ansatz, z, theta, lie);
  EXPECT_THROW(f.get(), std::invalid_argument);
  pool.wait_all();
  EXPECT_EQ(pool.counters().jobs_failed, 1u);
  EXPECT_EQ(pool.counters().jobs_retried, 0u);  // invalid_argument: no retry
  const JobTelemetry record = pool.telemetry().back();
  EXPECT_TRUE(record.failed);
  EXPECT_EQ(record.attempts, 1);
  EXPECT_FALSE(record.error_message.empty());
  EXPECT_FALSE(record.deadline_exceeded);
  EXPECT_TRUE(record.backend_history.empty());
}

// -- Scheduling --------------------------------------------------------------

TEST(VirtualQpuPool, PriorityClassesDispatchInOrder) {
  VirtualQpuPool pool = runtime::make_statevector_pool(1, 1, 8);
  Circuit c(1);
  c.h(0);
  PauliSum x(1);
  x.add_term(1.0, "X");

  pool.pause_dispatch();
  std::vector<std::future<double>> futures;
  auto submit = [&](JobPriority p) {
    JobOptions o;
    o.priority = p;
    futures.push_back(pool.submit_expectation(c, x, o));
  };
  submit(JobPriority::kLow);
  submit(JobPriority::kLow);
  submit(JobPriority::kNormal);
  submit(JobPriority::kHigh);
  submit(JobPriority::kHigh);
  EXPECT_EQ(pool.queue_depth(), 5u);
  pool.resume_dispatch();
  pool.wait_all();
  for (auto& f : futures) EXPECT_NEAR(f.get(), 1.0, 1e-12);

  const std::vector<JobTelemetry> log = pool.telemetry();
  ASSERT_EQ(log.size(), 5u);
  // Single worker + single QPU: completion order == dispatch order.
  EXPECT_EQ(log[0].priority, JobPriority::kHigh);
  EXPECT_EQ(log[1].priority, JobPriority::kHigh);
  EXPECT_LT(log[0].job_id, log[1].job_id);  // FIFO within a class
  EXPECT_EQ(log[2].priority, JobPriority::kNormal);
  EXPECT_EQ(log[3].priority, JobPriority::kLow);
  EXPECT_EQ(log[4].priority, JobPriority::kLow);
  EXPECT_LT(log[3].job_id, log[4].job_id);

  const auto counters = pool.counters();
  EXPECT_EQ(counters.queue_depth_high_water, 5u);
  EXPECT_GE(counters.total_execution_seconds, 0.0);
}

TEST(VirtualQpuPool, UtilizationAccountsEveryJob) {
  H2Fixture f;
  const auto sets = f.parameter_sets(10, 907);
  VirtualQpuPool pool = runtime::make_statevector_pool(4, 4, 28);
  std::vector<std::future<double>> futures;
  for (const auto& theta : sets)
    futures.push_back(pool.submit_energy(f.ansatz, f.h, theta));
  for (auto& fu : futures) fu.get();
  pool.wait_all();

  std::uint64_t jobs = 0;
  for (const auto& u : pool.utilization()) jobs += u.jobs_run;
  EXPECT_EQ(jobs, sets.size());
  for (const JobTelemetry& t : pool.telemetry()) {
    EXPECT_GE(t.queue_wait_seconds, 0.0);
    EXPECT_GE(t.execution_seconds, 0.0);
    EXPECT_GE(t.backend_id, 0);
    EXPECT_LT(t.backend_id, 4);
  }
}

// -- AsyncEnergyEvaluator ----------------------------------------------------

TEST(VirtualQpuPool, StatsSnapshotTracksQueueAndFlight) {
  VirtualQpuPool pool = runtime::make_statevector_pool(2, 2, 8);

  runtime::PoolStats idle = pool.stats();
  EXPECT_EQ(idle.queue_depth, 0u);
  EXPECT_EQ(idle.jobs_in_flight, 0u);
  EXPECT_EQ(idle.idle_backends, 2);
  EXPECT_EQ(idle.open_breakers, 0);
  ASSERT_EQ(idle.backends.size(), 2u);
  for (const runtime::BackendHealth& b : idle.backends)
    EXPECT_EQ(b.breaker, resilience::BreakerState::kClosed);

  // With dispatch paused, every submission sits in the queue and the
  // snapshot must see all of them at once with nothing in flight.
  pool.pause_dispatch();
  Circuit bell(2);
  bell.h(0).cx(0, 1);
  std::vector<std::future<double>> futs;
  PauliSum zz(2);
  zz.add_term(1.0, "ZZ");
  for (int i = 0; i < 5; ++i)
    futs.push_back(pool.submit_expectation(bell, zz));
  runtime::PoolStats queued = pool.stats();
  EXPECT_EQ(queued.queue_depth, 5u);
  EXPECT_EQ(queued.jobs_in_flight, 0u);
  EXPECT_EQ(queued.counters.jobs_submitted, 5u);

  pool.resume_dispatch();
  for (auto& f : futs) EXPECT_DOUBLE_EQ(f.get(), 1.0);
  pool.wait_all();
  runtime::PoolStats drained = pool.stats();
  EXPECT_EQ(drained.queue_depth, 0u);
  EXPECT_EQ(drained.jobs_in_flight, 0u);
  EXPECT_EQ(drained.counters.jobs_completed, 5u);
  EXPECT_EQ(drained.counters.jobs_failed, 0u);
  EXPECT_EQ(drained.idle_backends, 2);
}

TEST(AsyncEnergyEvaluator, GradientMatchesBatchedGradient) {
  H2Fixture f;
  Rng rng(911);
  std::vector<double> theta(f.ansatz.num_parameters());
  for (double& t : theta) t = rng.uniform(-0.3, 0.3);

  VirtualQpuPool pool = runtime::make_statevector_pool(2, 2, 28);
  AsyncEnergyEvaluator async(f.ansatz, f.h, &pool);

  const std::vector<double> overlapped = async.gradient(theta);
  const std::vector<double> reference =
      batched_gradient(f.ansatz, f.h, theta, 1e-5, &pool);
  ASSERT_EQ(overlapped.size(), reference.size());
  // On a batch-capable pool, gradient() routes through the compiled/fused
  // batched path, which agrees with the scalar reference to fp round-off
  // (not bit-for-bit: fusion reassociates the gate products).
  for (std::size_t k = 0; k < reference.size(); ++k)
    EXPECT_NEAR(overlapped[k], reference[k], 1e-9) << k;

  EXPECT_EQ(async.evaluate(theta),
            SimulatorExecutor(f.ansatz, f.h).evaluate(theta));
  EXPECT_GT(async.stats().energy_evaluations, 0u);
}

TEST(AsyncEnergyEvaluator, DrivesAdamThroughOverlappedGradients) {
  H2Fixture f;
  VirtualQpuPool pool = runtime::make_statevector_pool(2, 2, 28);
  AsyncEnergyEvaluator async(f.ansatz, f.h, &pool);

  AdamOptions options;
  options.iterations = 40;
  options.learning_rate = 0.1;
  Adam adam(options, async.gradient_fn());
  const OptimizerResult result = adam.minimize(
      async.objective_fn(), std::vector<double>(f.ansatz.num_parameters()));
  // H2/STO-3G ground state at -1.137 Ha; HF sits at -1.117.
  EXPECT_LT(result.fval, -1.13);
}

}  // namespace
}  // namespace vqsim
