// VQE ground-state energy of H2/STO-3G — the canonical end-to-end check.
//
//   $ ./vqe_h2
//
// Exercises the paper's full Fig. 2 pipeline on a real molecule with real
// literature integrals: second-quantized Hamiltonian -> Jordan-Wigner ->
// UCCSD ansatz -> Nelder-Mead VQE on the cached-state executor, validated
// against FCI. Also reports the Fig. 3 gate-cost model for this problem.

#include <cstdio>

#include "api/workflow.hpp"
#include "chem/molecules.hpp"

int main() {
  using namespace vqsim;

  WorkflowConfig config;
  config.molecule = h2_sto3g();
  config.algorithm = WorkflowAlgorithm::kVqe;

  std::printf("H2 / STO-3G at R = 0.7414 A\n");
  const WorkflowReport report = run_workflow(config);

  std::printf("qubits               : %d\n", report.qubits);
  std::printf("Pauli terms          : %zu (in %zu QWC measurement groups)\n",
              report.pauli_terms, report.measurement_groups);
  std::printf("E(HF)                : %+.8f Ha\n", report.hf_energy);
  std::printf("E(VQE/UCCSD)         : %+.8f Ha\n", report.energy);
  std::printf("E(FCI)               : %+.8f Ha\n", *report.fci_energy);
  std::printf("VQE error            : %+.2e Ha (chemical accuracy %s)\n",
              report.energy - *report.fci_energy,
              std::abs(report.energy - *report.fci_energy) <
                      kChemicalAccuracy
                  ? "reached"
                  : "missed");
  std::printf("correlation recovered: %.1f %%\n",
              100.0 * (report.energy - report.hf_energy) /
                  (*report.fci_energy - report.hf_energy));

  const VqeResult& vqe = *report.vqe;
  std::printf("optimizer evaluations: %zu\n", vqe.evaluations);
  std::printf("gate model per energy evaluation (Fig. 3):\n");
  std::printf("  non-caching : %zu gates\n",
              vqe.cost_model.non_caching_gates());
  std::printf("  caching     : %zu gates (%.0fx saved)\n",
              vqe.cost_model.caching_gates(),
              static_cast<double>(vqe.cost_model.non_caching_gates()) /
                  static_cast<double>(vqe.cost_model.caching_gates()));
  return 0;
}
