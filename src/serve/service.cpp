#include "serve/service.hpp"

#include <unordered_map>
#include <utility>

#include "analyze/cost.hpp"
#include "telemetry/telemetry.hpp"

namespace vqsim::serve {

namespace {

std::string outcome_message(AdmissionOutcome outcome, const TenantId& tenant) {
  return "serve: request from tenant \"" + tenant +
         "\" rejected: " + to_string(outcome);
}

}  // namespace

AdmissionRejected::AdmissionRejected(AdmissionOutcome outcome, TenantId tenant)
    : std::runtime_error(outcome_message(outcome, tenant)),
      outcome_(outcome),
      tenant_(std::move(tenant)) {}

SimService::SimService(runtime::VirtualQpuPool& pool,
                       const TenantRegistry& tenants, ServeConfig config)
    : pool_(pool),
      config_(config),
      registry_(tenants),
      admission_(tenants, config.admission),
      value_cache_(config.cache_bytes,
                   [](std::uint64_t n) {
                     VQSIM_COUNTER(evictions, "serve.cache_evictions_total");
                     VQSIM_COUNTER_ADD(evictions, n);
                   }),
      state_cache_(config.state_cache_bytes, [](std::uint64_t n) {
        VQSIM_COUNTER(evictions, "serve.cache_evictions_total");
        VQSIM_COUNTER_ADD(evictions, n);
      }) {
  // Dynamic metric names can't go through the VQSIM_* macros (those cache a
  // static handle per call site), so per-tenant gauges hold registry
  // references resolved once here.
  for (const std::string& name : registry_.names()) {
    tenant_in_flight_gauges_.emplace(
        name, &telemetry::MetricsRegistry::global().gauge(
                  "serve.tenant." + name + ".in_flight"));
  }
}

void SimService::admit_or_throw(const TenantId& tenant, double request_cost,
                                int num_qubits) {
  VQSIM_COUNTER(admitted_total, "serve.admitted_total");
  VQSIM_COUNTER(rejected_total, "serve.rejected_total");
  VQSIM_COUNTER(rejected_cost_total, "serve.rejected_cost_total");
  VQSIM_COUNTER(shed_total, "serve.shed_total");
  VQSIM_COUNTER(shed_degraded_total, "serve.shed_degraded_total");
  VQSIM_HISTOGRAM(h_cost, "serve.request_cost");
  VQSIM_HISTOGRAM_OBSERVE(h_cost, request_cost);
  const AdmissionOutcome outcome = admission_.admit_request(
      tenant, Clock::now(), pool_.stats(), request_cost, num_qubits);
  switch (outcome) {
    case AdmissionOutcome::kAdmitted:
      VQSIM_COUNTER_INC(admitted_total);
      return;
    case AdmissionOutcome::kShedBreakerOpen:
      VQSIM_COUNTER_INC(shed_total);
      break;
    case AdmissionOutcome::kShedDegraded:
      VQSIM_COUNTER_INC(shed_degraded_total);
      VQSIM_COUNTER_INC(shed_total);
      break;
    case AdmissionOutcome::kRejectedCost:
      VQSIM_COUNTER_INC(rejected_cost_total);
      VQSIM_COUNTER_INC(rejected_total);
      break;
    default:
      VQSIM_COUNTER_INC(rejected_total);
      break;
  }
  throw AdmissionRejected(outcome, tenant);
}

void SimService::record_served(const TenantId& tenant,
                               AdmissionController::Served served) {
  VQSIM_COUNTER(hits_total, "serve.cache_hits_total");
  VQSIM_COUNTER(misses_total, "serve.cache_misses_total");
  VQSIM_COUNTER(coalesced_total, "serve.coalesced_total");
  switch (served) {
    case AdmissionController::Served::kCacheHit:
      VQSIM_COUNTER_INC(hits_total);
      break;
    case AdmissionController::Served::kCoalesced:
      VQSIM_COUNTER_INC(coalesced_total);
      break;
    case AdmissionController::Served::kExecuted:
      VQSIM_COUNTER_INC(misses_total);
      break;
  }
  admission_.record(tenant, served);
}

runtime::JobOptions SimService::job_options(const TenantId& tenant,
                                            const ServeOptions& options) const {
  runtime::JobOptions job;
  job.priority = registry_.config(tenant).priority;
  job.noise = options.noise;
  job.clifford_only = options.clifford_only;
  job.retry = options.retry;
  job.deadline = options.deadline;
  return job;
}

RequestContext SimService::request_context(runtime::JobKind kind,
                                           const ServeOptions& options) {
  RequestContext context;
  context.kind = kind;
  context.clifford_only = options.clifford_only;
  context.noise = options.noise;
  context.shots = options.shots;
  context.seed = options.seed;
  return context;
}

template <class T>
std::shared_future<T> SimService::reserve_and_submit(
    const TenantId& tenant,
    const std::function<std::shared_future<T>()>& submit) {
  // Ready-cell slot binding: the slot's readiness probe is reserved before
  // the future exists, via an indirection cell filled in right after the
  // pool accepts the job. All cell access happens under mutex_ (reserve,
  // prune, and this fill-in), so the probe never races its own binding.
  auto cell = std::make_shared<std::function<bool()>>();
  if (!admission_.try_reserve_slot(
          tenant, [cell] { return *cell && (*cell)(); })) {
    throw AdmissionRejected(AdmissionOutcome::kRejectedQuota, tenant);
  }
  std::shared_future<T> result;
  try {
    result = submit();
  } catch (...) {
    *cell = [] { return true; };  // release the slot: nothing is in flight
    throw;
  }
  *cell = [result] {
    return result.wait_for(std::chrono::seconds(0)) ==
           std::future_status::ready;
  };
  if (const auto it = tenant_in_flight_gauges_.find(tenant);
      it != tenant_in_flight_gauges_.end()) {
    it->second->set(static_cast<std::int64_t>(admission_.in_flight(tenant)));
  }
  return result;
}

std::shared_future<double> SimService::submit_energy(
    const TenantId& tenant, const Ansatz& ansatz, const PauliSum& observable,
    std::vector<double> theta, ServeOptions options) {
  // Materialize the bound circuit once, outside the lock: it prices the
  // request for the cost-weighted admission gate and doubles as the cache
  // identity below.
  const Circuit bound = ansatz.circuit(theta);
  MutexLock lock(mutex_);
  admit_or_throw(tenant,
                 analyze::statevector_cost_units(bound.num_qubits(),
                                                 bound.size()),
                 bound.num_qubits());
  const auto submit = [&]() VQSIM_NO_THREAD_SAFETY_ANALYSIS {
    return reserve_and_submit<double>(tenant, [&] {
      return pool_
          .submit_energy(ansatz, observable, std::move(theta),
                         job_options(tenant, options))
          .share();
    });
  };
  if (options.bypass_cache || !value_cache_.enabled()) {
    auto result = submit();
    record_served(tenant, AdmissionController::Served::kExecuted);
    return result;
  }
  // Cache identity is the materialized bound circuit: what the job *means*,
  // independent of which Ansatz object (or which backend fast path) is used
  // to compute it.
  const CacheKey key = make_cache_key(
      bound, &observable, request_context(runtime::JobKind::kEnergy, options));
  const auto lookup = value_cache_.get_or_submit(key, submit);
  record_served(tenant, lookup.hit ? AdmissionController::Served::kCacheHit
                : lookup.coalesced ? AdmissionController::Served::kCoalesced
                                   : AdmissionController::Served::kExecuted);
  return lookup.result;
}

std::vector<std::shared_future<double>> SimService::submit_energy_batch(
    const TenantId& tenant, const Ansatz& ansatz, const PauliSum& observable,
    std::vector<std::vector<double>> thetas, ServeOptions options) {
  const std::size_t k = thetas.size();
  std::vector<std::shared_future<double>> out(k);
  if (k == 0) return out;

  // Materialize every bound circuit outside the lock: the batch is priced
  // at the summed per-item cost, and each circuit doubles as its item's
  // cache identity below.
  std::vector<Circuit> bound;
  bound.reserve(k);
  double cost = 0.0;
  for (const std::vector<double>& theta : thetas) {
    bound.push_back(ansatz.circuit(theta));
    cost += analyze::statevector_cost_units(bound.back().num_qubits(),
                                            bound.back().size());
  }

  MutexLock lock(mutex_);
  admit_or_throw(tenant, cost, ansatz.num_qubits());

  const bool cached = !options.bypass_cache && value_cache_.enabled();
  const RequestContext context =
      request_context(runtime::JobKind::kBatch, options);

  // Peek phase: resident items (settled or in flight) are served from the
  // cache without touching the pool; duplicates within the batch coalesce
  // onto their first occurrence. Only true misses execute.
  std::vector<CacheKey> keys;
  keys.reserve(k);
  std::vector<std::size_t> miss;  // indices that must execute
  std::vector<std::pair<std::size_t, std::size_t>> dups;  // (follower, leader)
  std::unordered_map<CacheKey, std::size_t, CacheKeyHash> leaders;
  std::vector<AdmissionController::Served> served(
      k, AdmissionController::Served::kExecuted);
  for (std::size_t i = 0; i < k; ++i) {
    keys.push_back(make_cache_key(bound[i], &observable, context));
    if (cached) {
      const auto peek = value_cache_.peek(keys[i]);
      if (peek.found) {
        out[i] = peek.result;
        served[i] = peek.hit ? AdmissionController::Served::kCacheHit
                             : AdmissionController::Served::kCoalesced;
        continue;
      }
      if (const auto it = leaders.find(keys[i]); it != leaders.end()) {
        dups.emplace_back(i, it->second);
        served[i] = AdmissionController::Served::kCoalesced;
        continue;
      }
      leaders.emplace(keys[i], i);
    }
    miss.push_back(i);
  }

  if (!miss.empty()) {
    // One quota slot covers the whole dispatched batch; it frees when the
    // last miss future settles. Slot binding mirrors reserve_and_submit's
    // ready-cell pattern (all cell access stays under mutex_).
    auto cell = std::make_shared<std::function<bool()>>();
    if (!admission_.try_reserve_slot(
            tenant, [cell] { return *cell && (*cell)(); })) {
      throw AdmissionRejected(AdmissionOutcome::kRejectedQuota, tenant);
    }
    std::vector<std::shared_future<double>> fresh;
    try {
      std::vector<std::vector<double>> miss_thetas;
      miss_thetas.reserve(miss.size());
      for (std::size_t idx : miss) miss_thetas.push_back(std::move(thetas[idx]));
      std::vector<std::future<double>> futures = pool_.submit_energy_batch(
          ansatz, observable, std::move(miss_thetas),
          job_options(tenant, options));
      fresh.reserve(futures.size());
      for (std::future<double>& f : futures) fresh.push_back(f.share());
    } catch (...) {
      *cell = [] { return true; };  // release the slot: nothing is in flight
      throw;
    }
    *cell = [fresh] {
      for (const std::shared_future<double>& f : fresh) {
        if (f.wait_for(std::chrono::seconds(0)) != std::future_status::ready)
          return false;
      }
      return true;
    };
    for (std::size_t j = 0; j < miss.size(); ++j) {
      const std::size_t idx = miss[j];
      if (cached) {
        // Insert the already-submitted future so later identical requests
        // (scalar peeks or other batches) coalesce onto this execution.
        const auto lookup = value_cache_.get_or_submit(
            keys[idx], [&] { return fresh[j]; });
        out[idx] = lookup.result;
      } else {
        out[idx] = fresh[j];
      }
    }
  }

  for (const auto& [follower, leader] : dups) out[follower] = out[leader];
  for (std::size_t i = 0; i < k; ++i) record_served(tenant, served[i]);
  if (const auto it = tenant_in_flight_gauges_.find(tenant);
      it != tenant_in_flight_gauges_.end()) {
    it->second->set(static_cast<std::int64_t>(admission_.in_flight(tenant)));
  }
  return out;
}

std::shared_future<double> SimService::submit_expectation(
    const TenantId& tenant, Circuit circuit, PauliSum observable,
    ServeOptions options) {
  MutexLock lock(mutex_);
  admit_or_throw(tenant,
                 analyze::statevector_cost_units(circuit.num_qubits(),
                                                 circuit.size()),
                 circuit.num_qubits());
  const CacheKey key = make_cache_key(
      circuit, &observable,
      request_context(runtime::JobKind::kExpectation, options));
  const auto submit = [&]() VQSIM_NO_THREAD_SAFETY_ANALYSIS {
    return reserve_and_submit<double>(tenant, [&] {
      return pool_
          .submit_expectation(std::move(circuit), std::move(observable),
                              job_options(tenant, options))
          .share();
    });
  };
  if (options.bypass_cache || !value_cache_.enabled()) {
    auto result = submit();
    record_served(tenant, AdmissionController::Served::kExecuted);
    return result;
  }
  const auto lookup = value_cache_.get_or_submit(key, submit);
  record_served(tenant, lookup.hit ? AdmissionController::Served::kCacheHit
                : lookup.coalesced ? AdmissionController::Served::kCoalesced
                                   : AdmissionController::Served::kExecuted);
  return lookup.result;
}

std::shared_future<StateVector> SimService::submit_circuit(
    const TenantId& tenant, Circuit circuit, ServeOptions options) {
  MutexLock lock(mutex_);
  admit_or_throw(tenant,
                 analyze::statevector_cost_units(circuit.num_qubits(),
                                                 circuit.size()),
                 circuit.num_qubits());
  const CacheKey key = make_cache_key(
      circuit, nullptr,
      request_context(runtime::JobKind::kCircuitRun, options));
  const auto submit = [&]() VQSIM_NO_THREAD_SAFETY_ANALYSIS {
    return reserve_and_submit<StateVector>(tenant, [&] {
      return pool_
          .submit_circuit(std::move(circuit), job_options(tenant, options))
          .share();
    });
  };
  if (options.bypass_cache || !state_cache_.enabled()) {
    auto result = submit();
    record_served(tenant, AdmissionController::Served::kExecuted);
    return result;
  }
  const auto lookup = state_cache_.get_or_submit(key, submit);
  record_served(tenant, lookup.hit ? AdmissionController::Served::kCacheHit
                : lookup.coalesced ? AdmissionController::Served::kCoalesced
                                   : AdmissionController::Served::kExecuted);
  return lookup.result;
}

ServiceStats SimService::stats() const {
  MutexLock lock(mutex_);
  ServiceStats out;
  out.tenants = admission_.stats();
  for (const TenantAdmissionStats& t : out.tenants) {
    out.requests += t.requests;
    out.admitted += t.admitted;
    out.rejected += t.rejected_rate + t.rejected_quota +
                    t.rejected_queue_full + t.rejected_cost;
    out.shed += t.shed_breaker_open + t.shed_degraded;
    out.cache_hits += t.cache_hits;
    out.coalesced += t.coalesced;
    out.executed += t.executed;
    if (const auto it = tenant_in_flight_gauges_.find(t.name);
        it != tenant_in_flight_gauges_.end()) {
      it->second->set(static_cast<std::int64_t>(t.in_flight));
    }
  }
  out.value_cache = value_cache_.stats();
  out.state_cache = state_cache_.stats();
  return out;
}

}  // namespace vqsim::serve
