// Ablation: ADAPT-VQE operator pools (fermionic UCCSD vs qubit-ADAPT).
//
// DESIGN.md extension study. Qubit-ADAPT (paper ref [16]) trades shallower
// per-iteration circuits for more iterations; this bench quantifies that
// trade on an 8-qubit downfolded water-like system: iterations to chemical
// accuracy, total ansatz gate cost (sum of gadget gates over chosen
// operators), and wall time.

#include <cstdio>
#include <vector>

#include "chem/fci.hpp"
#include "chem/hartree_fock.hpp"
#include "chem/jordan_wigner.hpp"
#include "chem/molecules.hpp"
#include "common/timer.hpp"
#include "downfold/downfold.hpp"
#include "pauli/exp_gadget.hpp"
#include "vqe/adapt.hpp"
#include "vqe/pools.hpp"

int main() {
  using namespace vqsim;

  const MolecularIntegrals ints = water_like(6, 6);
  const DownfoldResult df = hermitian_downfold(ints, ActiveSpace{1, 4});
  const double e_fci =
      fci_ground_state(df.h_eff, 8, df.n_active_electrons).energy;
  const PauliSum h = jordan_wigner(df.h_eff);
  std::printf(
      "# ADAPT pool ablation: 8-qubit downfolded water-like, E_FCI=%.8f\n",
      e_fci);
  std::printf("%-16s %-8s %-8s %-10s %-12s %-10s %-8s\n", "pool", "size",
              "iters", "final_dE", "ansatz_gates", "converged", "wall_s");

  struct Case {
    const char* name;
    std::vector<PauliSum> pool;
  };
  std::vector<Case> cases;
  cases.push_back({"uccsd", uccsd_pool(8, df.n_active_electrons)});
  cases.push_back({"qubit", qubit_pool(8, df.n_active_electrons)});
  cases.push_back(
      {"qubit-minimal", minimal_qubit_pool(8, df.n_active_electrons)});

  for (Case& c : cases) {
    AdaptOptions opts;
    opts.max_operators = 40;
    opts.reference_energy = e_fci;
    opts.reference_target = kChemicalAccuracy;
    opts.inner.iterations = 200;
    const std::size_t pool_size = c.pool.size();
    AdaptVqe adapt(h, hf_basis_state(df.n_active_electrons),
                   std::move(c.pool), opts);

    WallTimer timer;
    const AdaptResult r = adapt.run();
    const double wall = timer.seconds();

    std::size_t gates = 0;
    for (std::size_t op : r.operator_sequence)
      for (const PauliTerm& t : adapt.pool()[op].terms())
        gates += exp_pauli_gate_count(t.string);

    std::printf("%-16s %-8zu %-8zu %-10.6f %-12zu %-10s %-8.1f\n", c.name,
                pool_size, r.iterations.size(), r.energy - e_fci, gates,
                r.converged ? "yes" : "no", wall);
  }
  return 0;
}
