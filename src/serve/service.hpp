// SimService — the multi-tenant front door of the simulation stack (part 4).
//
// Layering (DESIGN.md §11):
//
//   client ── TenantId ──> SimService
//                            ├─ AdmissionController   shed / queue bound /
//                            │                        rate limit / quota
//                            ├─ ResultCache           content-addressed,
//                            │                        single-flight dedup
//                            └─ VirtualQpuPool        execution
//
// Every request is admitted first (an open-breaker fleet or an empty token
// bucket rejects it with AdmissionRejected before any work happens), then
// looked up in the content-addressed cache: a settled entry is returned
// immediately (cache hit, no pool resources), an in-flight entry is shared
// (coalesced — N concurrent identical requests cost one execution), and
// only a true miss reserves one of the tenant's concurrency slots and
// submits to the pool under the tenant's priority class.
//
// The service holds ONE mutex across the admit -> cache -> submit sequence,
// which is what makes the quota and single-flight guarantees exact under
// concurrent callers; the critical section only ever *submits* work (pool
// execution happens on pool workers), so the lock is never held across a
// simulation.
//
// Lifetime contracts mirror the pool's: the pool must outlive the service,
// and submit_energy's `ansatz`/`observable` must outlive the returned
// future's completion.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"
#include "runtime/virtual_qpu.hpp"
#include "serve/admission.hpp"
#include "serve/result_cache.hpp"
#include "serve/tenant.hpp"

namespace vqsim::telemetry {
class Gauge;
}

namespace vqsim::serve {

/// State vectors are charged at their amplitude storage, not sizeof.
template <>
struct ResultBytes<StateVector> {
  std::size_t operator()(const StateVector& psi) const {
    return sizeof(StateVector) + psi.memory_bytes();
  }
};

struct ServeConfig {
  /// Byte budget of the scalar (energy/expectation) result cache.
  /// 0 disables caching AND single-flight dedup for scalar requests.
  std::size_t cache_bytes = std::size_t{64} << 20;
  /// Byte budget of the state-vector result cache (states are big; this
  /// budget is charged at StateVector::memory_bytes). 0 disables.
  std::size_t state_cache_bytes = std::size_t{256} << 20;
  AdmissionPolicy admission;
};

/// Per-request knobs a tenant may set; everything that perturbs the result
/// bits participates in the cache key.
struct ServeOptions {
  NoiseModel noise;
  bool clifford_only = false;
  resilience::RetryPolicy retry;
  /// Forwarded to JobOptions::deadline (0 = none). NOT part of the cache
  /// key: a deadline changes when a result arrives, never its bits.
  std::chrono::milliseconds deadline{0};
  int shots = 0;           // reserved for sampled backends (key material)
  std::uint64_t seed = 0;  // reserved sampling seed (key material)
  /// Skip the cache for this request (still admitted, still quota-bound;
  /// the fresh result is not inserted either — for A/B measurement).
  bool bypass_cache = false;
};

/// Thrown by submit_* when admission turns a request away. Carries the
/// machine-readable outcome so callers can distinguish backpressure
/// (retry later: rate/quota/queue) from fleet sickness (shed).
class AdmissionRejected : public std::runtime_error {
 public:
  AdmissionRejected(AdmissionOutcome outcome, TenantId tenant);

  AdmissionOutcome outcome() const { return outcome_; }
  const TenantId& tenant() const { return tenant_; }

 private:
  AdmissionOutcome outcome_;
  TenantId tenant_;
};

/// Service-wide snapshot: request ledger + both caches + per-tenant detail.
struct ServiceStats {
  std::uint64_t requests = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;  // rate + quota + queue-full + queue-cost
  std::uint64_t shed = 0;      // breaker-open + degraded-capacity shed
  std::uint64_t cache_hits = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t executed = 0;
  CacheStats value_cache;
  CacheStats state_cache;
  std::vector<TenantAdmissionStats> tenants;
};

class SimService {
 public:
  /// The pool is borrowed and must outlive the service. The registry is
  /// copied; tenants are fixed for the service's lifetime.
  SimService(runtime::VirtualQpuPool& pool, const TenantRegistry& tenants,
             ServeConfig config = {});

  SimService(const SimService&) = delete;
  SimService& operator=(const SimService&) = delete;

  // Each submit_* admits, consults the cache, and (on a miss) reserves a
  // tenant slot and submits under the tenant's priority. Throws
  // AdmissionRejected when turned away and analyze::VerificationError when
  // the pool rejects the payload at submit time. Execution errors arrive
  // through the returned future (and are never cached).

  /// VQE energy at one parameter set. Cached under the fingerprint of the
  /// *materialized* bound circuit ansatz.circuit(theta) — two ansatz
  /// objects producing identical circuits share cache entries.
  std::shared_future<double> submit_energy(const TenantId& tenant,
                                           const Ansatz& ansatz,
                                           const PauliSum& observable,
                                           std::vector<double> theta,
                                           ServeOptions options = {});

  /// K VQE energies of one ansatz shape as ONE admitted request: a single
  /// admission decision + quota slot covers the whole batch (priced at the
  /// summed per-item cost), each item is looked up in the value cache
  /// individually, and only the misses are dispatched — as one
  /// JobKind::kBatch pool job. Returned futures are index-aligned with
  /// `thetas`; duplicate parameter sets within a batch coalesce onto one
  /// execution. Batch results live in a separate cache namespace from
  /// scalar submit_energy: the batched compiled path agrees with the
  /// scalar path to fp round-off, not bit-for-bit.
  std::vector<std::shared_future<double>> submit_energy_batch(
      const TenantId& tenant, const Ansatz& ansatz,
      const PauliSum& observable, std::vector<std::vector<double>> thetas,
      ServeOptions options = {});

  /// <observable> after `circuit` from |0...0>.
  std::shared_future<double> submit_expectation(const TenantId& tenant,
                                                Circuit circuit,
                                                PauliSum observable,
                                                ServeOptions options = {});

  /// Final state of `circuit` (cached against the state-vector budget).
  std::shared_future<StateVector> submit_circuit(const TenantId& tenant,
                                                 Circuit circuit,
                                                 ServeOptions options = {});

  ServiceStats stats() const;

  const runtime::VirtualQpuPool& pool() const { return pool_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// Admission gate shared by the submit_* front-ends: updates telemetry
  /// and throws AdmissionRejected on any outcome but kAdmitted.
  /// `request_cost` is the request's predicted cost in analyzer model
  /// units (the O(1) statevector bound; see analyze/cost.hpp), consumed by
  /// the policy's cost-weighted queue bound. `num_qubits` sizes the
  /// request for the degraded-capacity shed gate.
  void admit_or_throw(const TenantId& tenant, double request_cost,
                      int num_qubits) VQSIM_REQUIRES(mutex_);
  /// Classify + count how an admitted request was served.
  void record_served(const TenantId& tenant,
                     AdmissionController::Served served)
      VQSIM_REQUIRES(mutex_);
  /// Build JobOptions from the tenant's priority + the request options.
  runtime::JobOptions job_options(const TenantId& tenant,
                                  const ServeOptions& options) const;
  /// Cache-key context for one request of the given kind.
  static RequestContext request_context(runtime::JobKind kind,
                                        const ServeOptions& options);
  /// Reserve a quota slot and run `submit` (which must return the shared
  /// execution future); releases the slot on submit failure. Throws
  /// AdmissionRejected(kRejectedQuota) when the tenant is at quota.
  template <class T>
  std::shared_future<T> reserve_and_submit(
      const TenantId& tenant,
      const std::function<std::shared_future<T>()>& submit)
      VQSIM_REQUIRES(mutex_);

  runtime::VirtualQpuPool& pool_;
  ServeConfig config_;
  TenantRegistry registry_;
  /// Per-tenant `serve.tenant.<name>.in_flight` gauges, resolved once at
  /// construction (dynamic names can't use the static-handle macros).
  std::map<std::string, telemetry::Gauge*> tenant_in_flight_gauges_;

  mutable Mutex mutex_;
  mutable AdmissionController admission_ VQSIM_GUARDED_BY(mutex_);
  // The caches carry their own locks (taken strictly inside mutex_), so
  // their futures can settle on pool workers without touching mutex_.
  ResultCache<double> value_cache_;
  ResultCache<StateVector> state_cache_;
};

}  // namespace vqsim::serve
