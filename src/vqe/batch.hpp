// Batched circuit execution (paper §6.2 "future improvements": simulating
// multiple VQE circuits simultaneously to raise utilization).
//
// Each parameter set becomes one energy job submitted through the
// virtual-QPU pool (runtime/virtual_qpu.hpp): entries are independent, so
// they spread across the pool's workers exactly like independent circuits
// across GPU kernels / nodes in the paper's outlook. Called with no pool,
// the process-wide default pool serves the batch; called from *inside* a
// pool worker the batch runs inline (serially) instead of deadlocking on
// its own executor.
#pragma once

#include <span>
#include <vector>

#include "pauli/pauli_sum.hpp"
#include "runtime/virtual_qpu.hpp"
#include "vqe/ansatz.hpp"

namespace vqsim {

/// Energies of the observable at each parameter set, evaluated as one batch
/// of independent jobs on `pool` (default pool when null). Results are
/// deterministic and independent of the pool's worker count.
std::vector<double> evaluate_batch(
    const Ansatz& ansatz, const PauliSum& observable,
    const std::vector<std::vector<double>>& parameter_sets,
    runtime::VirtualQpuPool* pool = nullptr);

/// Central-difference gradient evaluated as ONE batch of 2 * P circuits
/// (the batching use-case the paper sketches for VQE inner loops).
std::vector<double> batched_gradient(const Ansatz& ansatz,
                                     const PauliSum& observable,
                                     std::span<const double> theta,
                                     double step = 1e-5,
                                     runtime::VirtualQpuPool* pool = nullptr);

}  // namespace vqsim
