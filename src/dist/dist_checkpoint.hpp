// Shard-level checkpointing for the distributed state vector.
//
// Serializes a DistSnapshot (per-rank shards + layout permutation + gate
// cursor, dist_state_vector.hpp) into the versioned checkpoint envelope
// from resilience/checkpoint.hpp, kind "dist-shards". Amplitudes travel as
// flat interleaved [re, im, re, im, ...] arrays through json_number's
// %.17g and parse back through strtod, so a restored register is
// bit-identical to the one snapshotted — the property the mid-circuit
// resume contract (DESIGN.md §14) rests on.
//
// checkpoint_stride() is the Young/Daly-style cost model deciding how
// often the recovery driver snapshots: the snapshot cost is a deep copy of
// every shard (amps × ranks), amortized against the gates re-executed on
// restore, giving s = sqrt(2 · c · G) gates between snapshots.
#pragma once

#include <cstddef>
#include <string>

#include "dist/dist_state_vector.hpp"
#include "telemetry/json_reader.hpp"

namespace vqsim {

/// Envelope kind for distributed shard checkpoints.
inline constexpr const char* kDistCheckpointKind = "dist-shards";

/// Serialize `snap` as the checkpoint payload object (no envelope).
std::string encode_dist_snapshot(const DistSnapshot& snap);

/// Decode a payload produced by encode_dist_snapshot. Throws
/// telemetry::JsonParseError / resilience::CheckpointError on malformed or
/// inconsistent payloads (shard count vs. partition, layout size, ...).
DistSnapshot decode_dist_snapshot(const telemetry::JsonValue& payload);

/// Write `snap` to `path` in the versioned envelope (atomic temp+rename).
void write_dist_checkpoint(const std::string& path, const DistSnapshot& snap);

/// Read and validate a "dist-shards" checkpoint from `path`.
DistSnapshot read_dist_checkpoint(const std::string& path);

/// Gates between snapshots for a circuit of `num_gates` gates, with the
/// snapshot costing `checkpoint_cost_gates` gate-equivalents (a full-shard
/// deep copy moves about as much memory as a handful of gate sweeps).
/// Young/Daly optimum s = sqrt(2 c G), clamped to [1, num_gates].
std::size_t checkpoint_stride(std::size_t num_gates,
                              double checkpoint_cost_gates = 4.0);

}  // namespace vqsim
