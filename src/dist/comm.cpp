#include "dist/comm.hpp"

#include <bit>
#include <stdexcept>
#include <utility>

namespace vqsim {

SimComm::SimComm(int num_ranks) : num_ranks_(num_ranks) {
  if (num_ranks <= 0 ||
      !std::has_single_bit(static_cast<unsigned>(num_ranks)))
    throw std::invalid_argument("SimComm: rank count must be a power of two");
  rank_bits_ = std::bit_width(static_cast<unsigned>(num_ranks)) - 1;
}

void SimComm::check_rank(int rank) const {
  if (rank < 0 || rank >= num_ranks_)
    throw std::out_of_range("SimComm: rank out of range");
}

void SimComm::exchange(int rank_a, std::vector<cplx>& payload_a, int rank_b,
                       std::vector<cplx>& payload_b) {
  check_rank(rank_a);
  check_rank(rank_b);
  if (rank_a == rank_b)
    throw std::invalid_argument("SimComm::exchange: self-exchange");
  if (payload_a.size() != payload_b.size())
    throw std::invalid_argument("SimComm::exchange: size mismatch");
  std::swap(payload_a, payload_b);
  MutexLock lock(stats_mutex_);
  stats_.point_to_point_messages += 2;
  stats_.amplitudes_exchanged += 2 * payload_a.size();
}

double SimComm::allreduce_sum(const std::vector<double>& per_rank) {
  if (static_cast<int>(per_rank.size()) != num_ranks_)
    throw std::invalid_argument("SimComm::allreduce_sum: size mismatch");
  {
    MutexLock lock(stats_mutex_);
    ++stats_.allreduces;
  }
  double s = 0.0;
  for (double v : per_rank) s += v;
  return s;
}

cplx SimComm::allreduce_sum(const std::vector<cplx>& per_rank) {
  if (static_cast<int>(per_rank.size()) != num_ranks_)
    throw std::invalid_argument("SimComm::allreduce_sum: size mismatch");
  {
    MutexLock lock(stats_mutex_);
    ++stats_.allreduces;
  }
  cplx s = 0.0;
  for (const cplx& v : per_rank) s += v;
  return s;
}

}  // namespace vqsim
