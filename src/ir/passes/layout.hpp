// Communication-avoiding qubit layout planning for the distributed backend
// (HiSVSIM-style layout permutation + Gottesman-inspired gate scheduling;
// see PAPERS.md and the Qiskit Aer cache-blocking analogue).
//
// The rank-partitioned state vector (dist/dist_state_vector.hpp) keeps the
// top qubits of the amplitude index on the rank axis: touching one of them
// with a non-diagonal gate moves amplitudes between ranks. The naive
// lowering pays a swap-in/gate/swap-out round trip for *every* such gate —
// up to four half-slice exchanges each — and immediately undoes the data
// movement it just paid for.
//
// This pass walks a circuit once and plans where the global<->local swaps
// land so they can *stay in place*: a persistent logical->physical qubit
// permutation absorbs each swap, runs of gates on the same global operands
// pay for one exchange, and diagonal gates (Z/RZ/CZ/RZZ/...) are scheduled
// in place on the rank axis at zero communication cost. Eviction picks the
// resident qubit whose next use is farthest away (Belady's rule), which is
// optimal for unit-cost swap traffic.
//
// The product is a LayoutPlan the executor replays step by step, plus
// LayoutStats comparing the planned exchange volume against the naive
// per-gate baseline (the FusionStats idiom: plan once, report the win).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "ir/circuit.hpp"

namespace vqsim {

/// Planned vs naive communication volume for one circuit.
struct LayoutStats {
  /// Amplitudes the naive swap-in/gate/swap-out lowering would move
  /// (accounted exactly as SimComm counts them: both directions of every
  /// pairwise exchange).
  std::uint64_t naive_amplitudes = 0;
  /// Amplitudes moved under the plan.
  std::uint64_t planned_amplitudes = 0;
  /// Pairwise exchange operations in the naive lowering / under the plan.
  std::uint64_t naive_exchanges = 0;
  std::uint64_t planned_exchanges = 0;
  /// Persistent global<->local swaps the plan schedules.
  std::size_t swaps_planned = 0;
  /// Naive swap operations minus planned ones (negative when the plan
  /// trades a cheaper swap-in for a naive in-place global gate).
  std::int64_t swaps_avoided = 0;
  /// Gates with at least one operand on the rank axis under the naive
  /// (identity) layout.
  std::size_t gates_with_global_operands = 0;

  /// Fraction of the naive amplitude traffic the plan avoids.
  double amplitude_reduction() const {
    return naive_amplitudes == 0
               ? 0.0
               : 1.0 - static_cast<double>(planned_amplitudes) /
                           static_cast<double>(naive_amplitudes);
  }

  LayoutStats& operator+=(const LayoutStats& o);
};

/// Per-gate action of a LayoutPlan. One entry per gate operand (q0, q1).
struct LayoutStep {
  /// Operand is physically local under the planned layout: no swap.
  static constexpr int kNoSwap = -1;
  /// Operand stays on the rank axis and the gate runs there in place
  /// (diagonal gates: zero communication).
  static constexpr int kStayGlobal = -2;
  /// Values >= 0 name the local physical slot the operand is swapped into
  /// (persistently — the layout permutation absorbs the swap).
  std::array<int, 2> action{kNoSwap, kNoSwap};
};

/// Comm plan for one circuit against a fixed register partition.
struct LayoutPlan {
  int num_qubits = 0;    // full register (may exceed the circuit's)
  int local_qubits = 0;  // qubits below the rank axis
  /// Layout the plan assumes at entry; empty means identity.
  std::vector<int> initial_layout;
  /// One step per gate, parallel to circuit.gates().
  std::vector<LayoutStep> steps;
  /// final_layout[logical] = physical slot after the planned circuit ran.
  std::vector<int> final_layout;
  LayoutStats stats;
};

/// Exchange-volume constants shared by plan_layout's accounting and the
/// analyze cost model (analyze/cost.hpp). With R = 2^(num_qubits -
/// local_qubits) ranks and D = 2^local_qubits amplitudes per shard, R/2
/// partner pairs participate in every global touch; SimComm counts both
/// directions of each pairwise exchange.
struct CommVolumeModel {
  std::uint64_t pairs = 0;         // R/2 pairwise exchange partners
  std::uint64_t local_dim = 0;     // D: amplitudes per shard
  std::uint64_t swap_amps = 0;     // pairs * D: one half-slice swap
  std::uint64_t inplace_amps = 0;  // pairs * 2D: in-place global 1q gate
};

/// Requires 0 < local_qubits <= num_qubits (plan_layout's own precondition).
CommVolumeModel comm_volume_model(int num_qubits, int local_qubits);

/// Plan the communication schedule for `circuit` on a register of
/// `num_qubits` qubits with `local_qubits` of them below the rank axis
/// (rank count = 2^(num_qubits - local_qubits)). `initial_layout` defaults
/// to identity; when given, initial_layout[logical] = physical must be a
/// permutation of [0, num_qubits).
LayoutPlan plan_layout(const Circuit& circuit, int num_qubits,
                       int local_qubits,
                       std::vector<int> initial_layout = {});

}  // namespace vqsim
