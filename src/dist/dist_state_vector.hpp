// Rank-partitioned distributed state vector (the SV-Sim PGAS design).
//
// With R = 2^r ranks over n qubits, rank `k` owns the 2^(n-r) amplitudes
// whose top r index bits equal k: qubits [0, n-r) are *local*, qubits
// [n-r, n) are *global*. Local-qubit gates run embarrassingly parallel per
// rank; global-qubit gates exchange amplitudes between partner ranks, and
// two-qubit gates with global operands are lowered to communication-backed
// qubit swaps followed by a local gate — the standard distributed
// state-vector playbook the paper's simulator uses across nodes.
#pragma once

#include <vector>

#include "dist/comm.hpp"
#include "ir/circuit.hpp"
#include "pauli/pauli_sum.hpp"
#include "sim/state_vector.hpp"

namespace vqsim {

class DistStateVector {
 public:
  /// |0...0> over `num_qubits`, partitioned across `comm`'s ranks.
  /// Requires num_qubits - rank_bits >= 2 (room for swap scratch qubits).
  DistStateVector(int num_qubits, SimComm* comm);

  int num_qubits() const { return num_qubits_; }
  int local_qubits() const { return local_qubits_; }
  int num_ranks() const { return comm_->num_ranks(); }

  void reset();
  void set_basis_state(idx basis);

  void apply_gate(const Gate& gate);
  void apply_circuit(const Circuit& circuit);

  /// Distributed <Z^mask> (local parity sums + allreduce).
  double expectation_z_mask(std::uint64_t mask);

  /// Distributed direct Pauli expectation (paper §4.2 across ranks): each
  /// rank pairs its amplitudes with the partner slice, then an allreduce
  /// combines the partial sums.
  cplx expectation_pauli(const PauliString& p);
  double expectation(const PauliSum& h);

  double norm();

  /// Reassemble the full state on "rank 0" (validation only).
  StateVector gather() const;

  CommStats comm_stats() const { return comm_->stats(); }

 private:
  bool is_local(int qubit) const { return qubit < local_qubits_; }
  int global_bit(int qubit) const { return qubit - local_qubits_; }

  void apply_mat2_local(const Mat2& m, int q);
  void apply_mat2_global(const Mat2& m, int q);
  /// Exchange-backed SWAP between a global qubit and a local qubit.
  void swap_global_local(int global_qubit, int local_qubit);
  /// Pick a local scratch qubit avoiding `avoid0` / `avoid1`.
  int pick_scratch(int avoid0, int avoid1) const;

  int num_qubits_ = 0;
  int local_qubits_ = 0;
  SimComm* comm_ = nullptr;
  std::vector<StateVector> local_;  // one shard per rank
};

}  // namespace vqsim
