// Compiled Pauli-sum operator: batched application of an observable.
//
// A JW-transformed two-body Hamiltonian has many Pauli strings sharing the
// same X-mask (a double excitation yields eight strings over one mask, and
// every diagonal term shares the empty mask). Grouping by X-mask folds each
// family into one dense "signed diagonal":
//
//   (H psi)[i ^ x] += d_x[i] * psi[i],   d_x[i] = sum_t c_t * phase_t(i)
//
// which turns term-by-term streaming into one pass per mask — the batching
// NWQ-Sim uses to keep GPU cores saturated (paper §4.2.3). Speedup is about
// the mean family size (~8x for chemistry Hamiltonians).
#pragma once

#include <span>
#include <vector>

#include "common/aligned.hpp"
#include "pauli/pauli_sum.hpp"
#include "sim/state_vector.hpp"

namespace vqsim {

class CompiledPauliSum {
 public:
  /// Precompile for a fixed register size (memory: masks * 2^n amplitudes;
  /// intended for n <= 16).
  CompiledPauliSum(const PauliSum& sum, int num_qubits);

  int num_qubits() const { return num_qubits_; }
  idx dim() const { return dim_; }
  std::size_t mask_families() const { return masks_.size(); }

  /// out = H |psi> (overwritten).
  void apply(const StateVector& psi, StateVector* out) const;

  /// <psi|H|psi> (H Hermitian; imaginary part discarded).
  double expectation(const StateVector& psi) const;

  /// Read access for external evaluators (exec's batched expectation walks
  /// the same mask families in the same order as expectation()).
  std::span<const std::uint64_t> masks() const { return masks_; }
  const AmpVector& diagonal(std::size_t family) const {
    return diagonals_[family];
  }

 private:
  int num_qubits_ = 0;
  idx dim_ = 0;
  std::vector<std::uint64_t> masks_;
  std::vector<AmpVector> diagonals_;  // one signed diagonal per mask
};

}  // namespace vqsim
