// Density-matrix simulator — the DM-Sim role of NWQ-Sim (paper ref [7]).
//
// rho is stored vectorized: entry rho(r, c) lives at index (c << n) | r of a
// 2n-qubit amplitude array, so a unitary U applies as U on the row qubits
// [0, n) and conj(U) on the column qubits [n, 2n), reusing the optimized
// state-vector kernels unchanged. Kraus channels apply as sums of such
// two-sided products. Exact open-system evolution for n <= ~10 qubits; the
// trajectory sampler (sim/noise.hpp) covers larger registers statistically
// and is validated against this backend in the tests.
#pragma once

#include <vector>

#include "pauli/pauli_sum.hpp"
#include "sim/state_vector.hpp"

namespace vqsim {

/// A quantum channel as a set of Kraus operators (single-qubit).
struct KrausChannel {
  std::vector<Mat2> operators;

  /// sum K^dag K = I to tolerance `tol`.
  bool is_trace_preserving(double tol = 1e-10) const;

  static KrausChannel depolarizing(double p);
  static KrausChannel amplitude_damping(double gamma);
  static KrausChannel phase_damping(double gamma);
};

class DensityMatrix {
 public:
  /// |0...0><0...0| over `num_qubits` qubits (costs 4^n amplitudes).
  explicit DensityMatrix(int num_qubits);

  /// rho = |psi><psi|.
  static DensityMatrix from_state(const StateVector& psi);

  int num_qubits() const { return num_qubits_; }
  idx dim() const { return idx{1} << num_qubits_; }

  cplx element(idx row, idx col) const;

  /// Unitary evolution rho -> U rho U^dag.
  void apply_gate(const Gate& gate);
  void apply_circuit(const Circuit& circuit);

  /// Channel application on one qubit: rho -> sum_k K_k rho K_k^dag.
  void apply_channel(const KrausChannel& channel, int qubit);

  double trace() const;
  /// tr(rho^2): 1 for pure states, 1/2^n for the maximally mixed state.
  double purity() const;

  /// tr(rho P) for a Pauli string / Hermitian Pauli sum.
  cplx expectation_pauli(const PauliString& p) const;
  double expectation(const PauliSum& h) const;

  /// P(qubit = 1) from the diagonal.
  double probability_one(int qubit) const;

 private:
  const StateVector& vec() const { return vectorized_; }

  int num_qubits_ = 0;
  StateVector vectorized_;  // 2n qubits
};

}  // namespace vqsim
