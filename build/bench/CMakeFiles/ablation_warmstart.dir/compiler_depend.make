# Empty compiler generated dependencies file for ablation_warmstart.
# This may be replaced when dependencies are built.
