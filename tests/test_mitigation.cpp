// Error-mitigation tests: readout confusion + parity inversion, and
// zero-noise extrapolation over the trajectory noise backend.

#include <gtest/gtest.h>

#include <cmath>

#include "chem/jordan_wigner.hpp"
#include "chem/molecules.hpp"
#include "chem/uccsd.hpp"
#include "common/bits.hpp"
#include "common/rng.hpp"
#include "sim/expectation.hpp"
#include "sim/readout_error.hpp"
#include "sim/sampler.hpp"
#include "vqe/vqe.hpp"
#include "vqe/zne.hpp"

namespace vqsim {
namespace {

TEST(ReadoutError, CorruptionStatistics) {
  const ReadoutErrorModel model = ReadoutErrorModel::uniform(1, 0.1, 0.2);
  Rng rng(1001);
  int flips0 = 0;
  int flips1 = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    if (model.corrupt(0b0, rng) == 0b1) ++flips0;
    if (model.corrupt(0b1, rng) == 0b0) ++flips1;
  }
  EXPECT_NEAR(flips0 / static_cast<double>(trials), 0.1, 0.01);
  EXPECT_NEAR(flips1 / static_cast<double>(trials), 0.2, 0.01);
}

TEST(ReadoutError, ParityAttenuationFactor) {
  const ReadoutErrorModel model = ReadoutErrorModel::uniform(3, 0.05, 0.05);
  EXPECT_NEAR(model.parity_attenuation(0b001), 0.9, 1e-12);
  EXPECT_NEAR(model.parity_attenuation(0b111), 0.9 * 0.9 * 0.9, 1e-12);
  EXPECT_NEAR(model.parity_attenuation(0), 1.0, 1e-12);
}

TEST(ReadoutError, MitigationRecoversExactExpectation) {
  StateVector psi(3);
  Circuit c(3);
  c.ry(0.8, 0).cx(0, 1).ry(-0.5, 2);
  psi.apply_circuit(c);
  const std::uint64_t mask = 0b011;
  const double exact = expectation_z_mask(psi, mask);

  const ReadoutErrorModel model = ReadoutErrorModel::uniform(3, 0.08, 0.08);
  Rng rng(1002);
  const std::vector<idx> clean = sample_states(psi, 200000, rng);
  const std::vector<idx> corrupted = corrupt_samples(clean, model, rng);

  // Raw estimate is biased toward zero by the attenuation factor...
  std::int64_t acc = 0;
  for (idx s : corrupted) acc += parity(s & mask) ? -1 : 1;
  const double raw = static_cast<double>(acc) / 200000.0;
  EXPECT_LT(std::abs(raw), std::abs(exact));
  // ...and mitigation recovers it.
  const double mitigated =
      mitigated_z_mask_expectation(corrupted, mask, model);
  EXPECT_NEAR(mitigated, exact, 0.02);
}

TEST(ReadoutError, RejectsAsymmetricMitigation) {
  const ReadoutErrorModel model = ReadoutErrorModel::uniform(2, 0.05, 0.15);
  EXPECT_THROW(mitigated_z_mask_expectation({0b00}, 0b01, model),
               std::invalid_argument);
  EXPECT_THROW(ReadoutErrorModel::uniform(2, 0.6, 0.5),
               std::invalid_argument);
}

TEST(Zne, RichardsonExactOnPolynomials) {
  // Quadratic through three points extrapolates exactly.
  const auto f = [](double x) { return 2.0 - 0.7 * x + 0.3 * x * x; };
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(f(x));
  EXPECT_NEAR(richardson_extrapolate(xs, ys), 2.0, 1e-12);
  EXPECT_THROW(richardson_extrapolate({1.0, 1.0}, {0.0, 0.0}),
               std::invalid_argument);
}

TEST(Zne, MitigatesDepolarizingBiasOnH2) {
  // Noisy UCCSD energy at the noiseless optimum: ZNE must land closer to
  // the exact value than the unmitigated lambda = 1 measurement.
  const PauliSum h = jordan_wigner(molecular_hamiltonian(h2_sto3g()));
  const UccsdAnsatzAdapter ansatz(4, 2);
  const VqeResult clean = run_vqe(ansatz, h, {});
  const Circuit circuit = ansatz.circuit(clean.parameters);

  NoiseModel model;
  model.depolarizing = 0.002;
  ZneOptions opts;
  opts.trajectories = 1500;
  const ZneResult r = zero_noise_extrapolation(circuit, h, model, opts);

  const double raw_error = std::abs(r.measured.front() - clean.energy);
  const double mitigated_error = std::abs(r.mitigated - clean.energy);
  EXPECT_LT(mitigated_error, raw_error);
  EXPECT_GT(raw_error, 0.01);  // the bias being mitigated is real
}

TEST(Zne, RejectsBadScales) {
  Circuit c(1);
  c.x(0);
  PauliSum z(1);
  z.add_term(1.0, "Z");
  ZneOptions opts;
  opts.scales = {1.0};
  EXPECT_THROW(zero_noise_extrapolation(c, z, NoiseModel{}, opts),
               std::invalid_argument);
  opts.scales = {1.0, -2.0};
  EXPECT_THROW(zero_noise_extrapolation(c, z, NoiseModel{}, opts),
               std::invalid_argument);
}

}  // namespace
}  // namespace vqsim
