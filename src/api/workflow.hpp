// End-to-end workflow (paper Fig. 2): coupled-cluster downfolding ->
// qubit observable (JW) -> algorithm (VQE / ADAPT-VQE / QPE) on the
// simulator backend, with FCI reference energies for validation.
//
// This layer plays XACC's role: it owns the quantum-classical co-processing
// loop and hides the plumbing between the chemistry substrate and NWQ-Sim's
// executors.
#pragma once

#include <optional>

#include "chem/integrals.hpp"
#include "downfold/active_space.hpp"
#include "downfold/downfold.hpp"
#include "pauli/pauli_sum.hpp"
#include "qpe/qpe.hpp"
#include "vqe/adapt.hpp"
#include "vqe/vqe.hpp"

namespace vqsim {

enum class WorkflowAlgorithm { kVqe, kAdaptVqe, kQpe };

struct WorkflowConfig {
  MolecularIntegrals molecule;
  /// Empty (n_active == 0) = use the full system, no downfolding.
  ActiveSpace active;
  DownfoldOptions downfold;
  WorkflowAlgorithm algorithm = WorkflowAlgorithm::kVqe;
  VqeOptions vqe;
  AdaptOptions adapt;
  QpeOptions qpe;
  /// Compute the exact (sector-FCI) reference of the executed Hamiltonian.
  bool compute_fci_reference = true;
  /// Non-empty: periodically snapshot the variational algorithm's state to
  /// this file and resume from it when it already exists, so a crashed
  /// workflow restarted with the same config continues instead of starting
  /// over. Applies to kAdaptVqe and to kVqe with the Adam optimizer
  /// (overrides vqe.checkpoint / adapt.checkpoint).
  std::string checkpoint_path;
};

struct WorkflowReport {
  int qubits = 0;
  int electrons = 0;
  std::size_t pauli_terms = 0;
  std::size_t measurement_groups = 0;
  double hf_energy = 0.0;
  std::optional<double> fci_energy;
  double energy = 0.0;  // the algorithm's result
  std::optional<VqeResult> vqe;
  std::optional<AdaptResult> adapt;
  std::optional<QpeResult> qpe;
  /// The qubit observable that was executed.
  PauliSum observable;
};

WorkflowReport run_workflow(const WorkflowConfig& config);

}  // namespace vqsim
