// Gate-application kernels.
//
// Every kernel enumerates amplitude groups by deleting the target-qubit bits
// from a compact counter and re-inserting them (common/bits.hpp); the groups
// are independent, which is exactly the parallelism NWQ-Sim maps onto GPU
// threads and we map onto OpenMP (paper §4, "distributing parallel
// simulation of gates and state updates across thousands of cores").

#include <array>
#include <bit>
#include <cmath>
#include <stdexcept>
#include <string>

#include "common/bits.hpp"
#include "common/parallel.hpp"
#include "sim/state_vector.hpp"
#include "telemetry/telemetry.hpp"

namespace vqsim {

#if !defined(VQSIM_TELEMETRY_DISABLED)
namespace {

// Per-gate-kind apply counters ("sim.gates.cx_total", ...), registered once
// and indexed by GateKind so the dispatch hot path is one table load plus a
// sharded add. kMat2 is the highest enumerator.
telemetry::Counter& gate_kind_counter(GateKind kind) {
  static const auto table = [] {
    std::array<telemetry::Counter*, static_cast<std::size_t>(GateKind::kMat2) +
                                        1>
        t{};
    for (std::size_t k = 0; k < t.size(); ++k)
      t[k] = &telemetry::MetricsRegistry::global().counter(
          std::string("sim.gates.") + gate_name(static_cast<GateKind>(k)) +
          "_total");
    return t;
  }();
  return *table[static_cast<std::size_t>(kind)];
}

}  // namespace
#endif  // !VQSIM_TELEMETRY_DISABLED

void StateVector::apply_mat2(const Mat2& m, int q) {
  if (q < 0 || q >= num_qubits_) throw std::out_of_range("apply_mat2: qubit");
  VQSIM_COUNTER(c_amps, "sim.amps_touched_total");
  VQSIM_COUNTER_ADD(c_amps, amp_.size());
  const unsigned uq = static_cast<unsigned>(q);
  const idx stride = pow2(uq);
  cplx* a = amp_.data();
  const cplx m00 = m(0, 0), m01 = m(0, 1), m10 = m(1, 0), m11 = m(1, 1);
  parallel_for(amp_.size() / 2, [&](idx k) {
    const idx i0 = insert_zero_bit(k, uq);
    const idx i1 = i0 | stride;
    const cplx a0 = a[i0];
    const cplx a1 = a[i1];
    a[i0] = m00 * a0 + m01 * a1;
    a[i1] = m10 * a0 + m11 * a1;
  });
}

void StateVector::apply_mat4(const Mat4& m, int q0, int q1) {
  if (q0 < 0 || q0 >= num_qubits_ || q1 < 0 || q1 >= num_qubits_ || q0 == q1)
    throw std::out_of_range("apply_mat4: qubits");
  VQSIM_COUNTER(c_amps, "sim.amps_touched_total");
  VQSIM_COUNTER_ADD(c_amps, amp_.size());
  const unsigned u0 = static_cast<unsigned>(q0);
  const unsigned u1 = static_cast<unsigned>(q1);
  const idx s0 = pow2(u0);  // low slot of the 4x4 index
  const idx s1 = pow2(u1);  // high slot
  cplx* a = amp_.data();
  parallel_for(amp_.size() / 4, [&](idx k) {
    const idx base = insert_two_zero_bits(k, u0, u1);
    const idx i00 = base;
    const idx i01 = base | s0;  // 4x4 index 1: q0 bit set
    const idx i10 = base | s1;  // 4x4 index 2: q1 bit set
    const idx i11 = base | s0 | s1;
    const cplx a0 = a[i00];
    const cplx a1 = a[i01];
    const cplx a2 = a[i10];
    const cplx a3 = a[i11];
    a[i00] = m(0, 0) * a0 + m(0, 1) * a1 + m(0, 2) * a2 + m(0, 3) * a3;
    a[i01] = m(1, 0) * a0 + m(1, 1) * a1 + m(1, 2) * a2 + m(1, 3) * a3;
    a[i10] = m(2, 0) * a0 + m(2, 1) * a1 + m(2, 2) * a2 + m(2, 3) * a3;
    a[i11] = m(3, 0) * a0 + m(3, 1) * a1 + m(3, 2) * a2 + m(3, 3) * a3;
  });
}

void StateVector::apply_controlled_mat2(const Mat2& m, int control,
                                        int target) {
  if (control < 0 || control >= num_qubits_ || target < 0 ||
      target >= num_qubits_ || control == target)
    throw std::out_of_range("apply_controlled_mat2: qubits");
  VQSIM_COUNTER(c_amps, "sim.amps_touched_total");
  VQSIM_COUNTER_ADD(c_amps, amp_.size() / 2);
  const unsigned uc = static_cast<unsigned>(control);
  const unsigned ut = static_cast<unsigned>(target);
  const idx cbit = pow2(uc);
  const idx tbit = pow2(ut);
  cplx* a = amp_.data();
  const cplx m00 = m(0, 0), m01 = m(0, 1), m10 = m(1, 0), m11 = m(1, 1);
  // Enumerate pairs with control = 1 only: delete both bits, re-insert
  // control = 1 and target in {0, 1}.
  parallel_for(amp_.size() / 4, [&](idx k) {
    const idx base = insert_two_zero_bits(k, uc, ut) | cbit;
    const idx i0 = base;
    const idx i1 = base | tbit;
    const cplx a0 = a[i0];
    const cplx a1 = a[i1];
    a[i0] = m00 * a0 + m01 * a1;
    a[i1] = m10 * a0 + m11 * a1;
  });
}

void StateVector::apply_phase(double phi, int q) {
  if (q < 0 || q >= num_qubits_) throw std::out_of_range("apply_phase");
  VQSIM_COUNTER(c_amps, "sim.amps_touched_total");
  VQSIM_COUNTER_ADD(c_amps, amp_.size());
  const unsigned uq = static_cast<unsigned>(q);
  const cplx e = std::exp(kI * phi);
  cplx* a = amp_.data();
  parallel_for(amp_.size(), [&](idx i) {
    if (test_bit(i, uq)) a[i] *= e;
  });
}

void StateVector::apply_pauli(const PauliString& p) {
  if (p.min_qubits() > num_qubits_)
    throw std::out_of_range("apply_pauli: string exceeds register");
  VQSIM_COUNTER(c_applies, "sim.pauli_applies_total");
  VQSIM_COUNTER_INC(c_applies);
  VQSIM_COUNTER(c_amps, "sim.amps_touched_total");
  VQSIM_COUNTER_ADD(c_amps, amp_.size());
  const std::uint64_t xm = p.x;
  const std::uint64_t zm = p.z;
  static const cplx kIPow[4] = {cplx{1, 0}, cplx{0, 1}, cplx{-1, 0},
                                cplx{0, -1}};
  const cplx global = kIPow[std::popcount(xm & zm) % 4];
  cplx* a = amp_.data();
  if (xm == 0) {
    parallel_for(amp_.size(), [&](idx i) {
      const double sign = parity(i & zm) ? -1.0 : 1.0;
      a[i] *= global * sign;
    });
    return;
  }
  // Pair (i, i ^ xm); enumerate representatives with the lowest X bit clear.
  const unsigned pivot = static_cast<unsigned>(std::countr_zero(xm));
  parallel_for(amp_.size() / 2, [&](idx k) {
    const idx i = insert_zero_bit(k, pivot);
    const idx j = i ^ xm;
    // P|i> = global * (-1)^parity(z & i) |j>, and symmetrically for |j>.
    const cplx pi = global * (parity(i & zm) ? -1.0 : 1.0);
    const cplx pj = global * (parity(j & zm) ? -1.0 : 1.0);
    const cplx ai = a[i];
    const cplx aj = a[j];
    a[j] = pi * ai;
    a[i] = pj * aj;
  });
}

void StateVector::apply_exp_pauli(const PauliString& p, double theta) {
  if (p.min_qubits() > num_qubits_)
    throw std::out_of_range("apply_exp_pauli: string exceeds register");
  // The exp-Pauli rotation is the whole-register kernel UCCSD/ADAPT state
  // preparation is built from (it bypasses apply_circuit), so it carries its
  // own span — without it a pure-UCCSD trace would show no sim activity.
  VQSIM_SPAN(/*cat=*/"sim", "exp_pauli");
  VQSIM_COUNTER(c_applies, "sim.exp_pauli_applies_total");
  VQSIM_COUNTER_INC(c_applies);
  VQSIM_COUNTER(c_amps, "sim.amps_touched_total");
  VQSIM_COUNTER_ADD(c_amps, amp_.size());
  const std::uint64_t xm = p.x;
  const std::uint64_t zm = p.z;
  const double c = std::cos(theta);
  const double s = std::sin(theta);
  cplx* a = amp_.data();
  if (p.is_identity()) {
    const cplx e = std::exp(-kI * theta);
    parallel_for(amp_.size(), [&](idx i) { a[i] *= e; });
    return;
  }
  static const cplx kIPow[4] = {cplx{1, 0}, cplx{0, 1}, cplx{-1, 0},
                                cplx{0, -1}};
  const cplx global = kIPow[std::popcount(xm & zm) % 4];
  if (xm == 0) {
    // Diagonal: amplitude i picks up exp(-i theta * s_i), s_i = +/-1.
    const cplx em = cplx{c, -s};  // exp(-i theta)
    const cplx ep = cplx{c, s};
    parallel_for(amp_.size(), [&](idx i) {
      a[i] *= parity(i & zm) ? ep : em;
    });
    return;
  }
  const unsigned pivot = static_cast<unsigned>(std::countr_zero(xm));
  const cplx mis{0.0, -s};  // -i sin(theta)
  parallel_for(amp_.size() / 2, [&](idx k) {
    const idx i = insert_zero_bit(k, pivot);
    const idx j = i ^ xm;
    const cplx pi = global * (parity(i & zm) ? -1.0 : 1.0);  // P|i> phase
    const cplx pj = global * (parity(j & zm) ? -1.0 : 1.0);
    const cplx ai = a[i];
    const cplx aj = a[j];
    a[i] = c * ai + mis * pj * aj;
    a[j] = c * aj + mis * pi * ai;
  });
}

void StateVector::apply_gate(const Gate& g) {
#if !defined(VQSIM_TELEMETRY_DISABLED)
  VQSIM_COUNTER(c_gates, "sim.gates_total");
  c_gates.inc();
  gate_kind_counter(g.kind).inc();
#endif
  switch (g.kind) {
    case GateKind::kI:
      return;
    case GateKind::kX:
      return apply_pauli(PauliString::single_axis(PauliAxis::kX, g.q0));
    case GateKind::kY:
      return apply_pauli(PauliString::single_axis(PauliAxis::kY, g.q0));
    case GateKind::kZ:
      return apply_pauli(PauliString::single_axis(PauliAxis::kZ, g.q0));
    case GateKind::kS:
      return apply_phase(kPi / 2, g.q0);
    case GateKind::kSdg:
      return apply_phase(-kPi / 2, g.q0);
    case GateKind::kT:
      return apply_phase(kPi / 4, g.q0);
    case GateKind::kTdg:
      return apply_phase(-kPi / 4, g.q0);
    case GateKind::kP:
      return apply_phase(g.params[0], g.q0);
    case GateKind::kRZ: {
      // Diagonal fast path: RZ = e^{-i theta Z / 2}.
      return apply_exp_pauli(PauliString::single_axis(PauliAxis::kZ, g.q0),
                             g.params[0] / 2);
    }
    case GateKind::kH:
    case GateKind::kSX:
    case GateKind::kSXdg:
    case GateKind::kRX:
    case GateKind::kRY:
    case GateKind::kU3:
    case GateKind::kMat1:
      return apply_mat2(gate_matrix2(g), g.q0);
    case GateKind::kCX:
    case GateKind::kCY:
    case GateKind::kCH:
    case GateKind::kCRX:
    case GateKind::kCRY:
    case GateKind::kCRZ: {
      // Extract the controlled 2x2 block from the 4x4 (control = q0 low).
      const Mat4 m4 = gate_matrix4(g);
      Mat2 u;
      u(0, 0) = m4(1, 1);
      u(0, 1) = m4(1, 3);
      u(1, 0) = m4(3, 1);
      u(1, 1) = m4(3, 3);
      return apply_controlled_mat2(u, g.q0, g.q1);
    }
    case GateKind::kCZ:
    case GateKind::kCP: {
      // Doubly-diagonal fast path: phase on |11>.
      const double phi =
          g.kind == GateKind::kCZ ? kPi : g.params[0];
      const cplx e = std::exp(kI * phi);
      const idx mask = pow2(static_cast<unsigned>(g.q0)) |
                       pow2(static_cast<unsigned>(g.q1));
      cplx* a = amp_.data();
      parallel_for(amp_.size(), [&](idx i) {
        if ((i & mask) == mask) a[i] *= e;
      });
      return;
    }
    case GateKind::kRZZ:
      // exp(-i theta/2 Z Z) — diagonal Pauli exponential fast path.
      return apply_exp_pauli(
          [&] {
            PauliString p;
            p.set_axis(g.q0, PauliAxis::kZ);
            p.set_axis(g.q1, PauliAxis::kZ);
            return p;
          }(),
          g.params[0] / 2);
    case GateKind::kSwap:
    case GateKind::kRXX:
    case GateKind::kRYY:
    case GateKind::kMat2:
      return apply_mat4(gate_matrix4(g), g.q0, g.q1);
  }
  throw std::invalid_argument("apply_gate: unhandled gate kind");
}

}  // namespace vqsim
