#include "serve/tenant.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace vqsim::serve {

bool TokenBucket::try_acquire(Clock::time_point now) {
  if (policy_.unlimited()) return true;
  if (!primed_) {
    primed_ = true;
    tokens_ = policy_.capacity;
    last_refill_ = now;
  } else if (now > last_refill_) {
    const double elapsed =
        std::chrono::duration<double>(now - last_refill_).count();
    tokens_ = std::min(policy_.capacity,
                       tokens_ + elapsed * policy_.refill_per_second);
    last_refill_ = now;
  }
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

double TokenBucket::available(Clock::time_point now) const {
  if (policy_.unlimited()) return std::numeric_limits<double>::infinity();
  if (!primed_) return policy_.capacity;
  if (now <= last_refill_) return tokens_;
  const double elapsed =
      std::chrono::duration<double>(now - last_refill_).count();
  return std::min(policy_.capacity,
                  tokens_ + elapsed * policy_.refill_per_second);
}

TenantRegistry& TenantRegistry::add(TenantConfig config) {
  if (config.name.empty())
    throw std::invalid_argument("TenantRegistry: tenant name must not be empty");
  if (tenants_.count(config.name))
    throw std::invalid_argument("TenantRegistry: duplicate tenant \"" +
                                config.name + "\"");
  tenants_.emplace(config.name, std::move(config));
  return *this;
}

bool TenantRegistry::contains(const std::string& name) const {
  return tenants_.count(name) != 0;
}

const TenantConfig& TenantRegistry::config(const std::string& name) const {
  const auto it = tenants_.find(name);
  if (it == tenants_.end())
    throw std::out_of_range("TenantRegistry: unknown tenant \"" + name + "\"");
  return it->second;
}

std::vector<std::string> TenantRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(tenants_.size());
  for (const auto& [name, config] : tenants_) out.push_back(name);
  return out;
}

}  // namespace vqsim::serve
