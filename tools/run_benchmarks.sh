#!/usr/bin/env bash
# Benchmark harness: Release build, machine-readable results, determinism
# gate.
#
#   1. Configures + builds the bench targets in Release mode.
#   2. Runs the BENCH-protocol binaries (bench/bench_emit.hpp). Each drops a
#      BENCH_<suite>.json next to its stdout table; perf_virtual_qpu doubles
#      as the determinism gate — it exits non-zero if any worker-count cell
#      reproduces different energies, which aborts this script.
#   3. Runs the google-benchmark perf_* binaries with JSON output.
#   4. Aggregates every BENCH_*.json into one BENCH_baseline.json keyed by
#      suite, for regression diffing across commits.
#
# Usage: tools/run_benchmarks.sh [--quick] [build-dir] [out-dir]
#   --quick     skip the slow targets (fig5_adapt_vqe, google-benchmark set)
#   build-dir   defaults to <repo>/build-bench
#   out-dir     defaults to <repo>/bench-results
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

quick=0
if [[ "${1:-}" == "--quick" ]]; then
  quick=1
  shift
fi
build_dir="${1:-${repo_root}/build-bench}"
out_dir="${2:-${repo_root}/bench-results}"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=Release \
  -DVQSIM_BUILD_BENCH=ON

bench_targets=(perf_virtual_qpu fig3_caching)
gbench_targets=(perf_gate_kernels perf_fusion perf_expectation perf_caching)
if [[ "${quick}" == 0 ]]; then
  bench_targets+=(fig5_adapt_vqe)
fi
cmake --build "${build_dir}" -j --target "${bench_targets[@]}" \
  $([[ "${quick}" == 0 ]] && echo "${gbench_targets[@]}")

mkdir -p "${out_dir}"
export VQSIM_BENCH_DIR="${out_dir}"

# BENCH-protocol binaries. set -e turns perf_virtual_qpu's determinism /
# rejection failures (non-zero exit) into a harness failure.
for target in "${bench_targets[@]}"; do
  echo "== ${target}"
  "${build_dir}/bench/${target}" | tee "${out_dir}/${target}.log"
done

# google-benchmark microbenchmarks (JSON sidecar per binary).
if [[ "${quick}" == 0 ]]; then
  for target in "${gbench_targets[@]}"; do
    echo "== ${target}"
    "${build_dir}/bench/${target}" \
      --benchmark_out="${out_dir}/GBENCH_${target}.json" \
      --benchmark_out_format=json
  done
fi

# Aggregate the suite files into one object: {"suites":{"<name>":[rows]}}.
# Every BENCH_<suite>.json is a complete JSON array, so plain concatenation
# produces valid JSON without needing a JSON tool in the container.
baseline="${out_dir}/BENCH_baseline.json"
{
  printf '{"suites":{'
  first=1
  for f in "${out_dir}"/BENCH_*.json; do
    [[ "$(basename "$f")" == "BENCH_baseline.json" ]] && continue
    suite="$(basename "$f" .json)"
    suite="${suite#BENCH_}"
    [[ "${first}" == 0 ]] && printf ','
    first=0
    printf '"%s":' "${suite}"
    tr -d '\n' < "$f"
  done
  printf '}}\n'
} > "${baseline}"

echo "Benchmark results aggregated into ${baseline}"
