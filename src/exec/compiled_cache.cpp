#include "exec/compiled_cache.hpp"

#include <stdexcept>

#include "ir/fingerprint.hpp"
#include "resilience/fault_injection.hpp"
#include "telemetry/telemetry.hpp"

namespace vqsim::exec {

CompiledCircuitCache::CompiledCircuitCache(std::size_t max_entries)
    : max_entries_(max_entries) {
  if (max_entries_ == 0)
    throw std::invalid_argument("CompiledCircuitCache: max_entries must be > 0");
}

std::shared_ptr<const CompiledCircuit> CompiledCircuitCache::get_or_compile(
    const Circuit& representative) {
  const std::uint64_t key = ir::circuit_shape_fingerprint(representative);
  VQSIM_COUNTER(c_hits, "exec.compile_hits_total");
  VQSIM_COUNTER(c_misses, "exec.compile_misses_total");
  VQSIM_COUNTER(c_evictions, "exec.compile_evictions_total");
  std::lock_guard<std::mutex> lock(mutex_);
  if (auto it = by_shape_.find(key); it != by_shape_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    VQSIM_COUNTER_INC(c_hits);
    return lru_.front().second;
  }
  // Fault site "exec.compile": fires before the plan is constructed, so a
  // failed compile inserts nothing — the next attempt re-compiles instead
  // of serving a poisoned cache entry.
  VQSIM_FAULT_POINT("exec.compile");
  // Compile under the lock: plans are cheap relative to the executions they
  // amortize, and holding the lock gives exactly-once compilation per shape.
  auto plan = std::make_shared<const CompiledCircuit>(representative);
  lru_.emplace_front(key, plan);
  by_shape_[key] = lru_.begin();
  ++misses_;
  VQSIM_COUNTER_INC(c_misses);
  while (lru_.size() > max_entries_) {
    by_shape_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
    VQSIM_COUNTER_INC(c_evictions);
  }
  return plan;
}

CompiledCircuitCache::Stats CompiledCircuitCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return Stats{hits_, misses_, evictions_, lru_.size()};
}

void CompiledCircuitCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  by_shape_.clear();
}

}  // namespace vqsim::exec
