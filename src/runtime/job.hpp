// Typed jobs accepted by the virtual-QPU pool.
//
// Three job kinds mirror the paper's workflow layers: raw circuit execution
// (returns the final state), Pauli-sum expectation of a circuit (optionally
// under a noise model), and a full VQE energy evaluation (ansatz + parameter
// vector + observable — the unit the §6.2 outlook wants batched across
// simulators). Every job carries requirements that the pool matches against
// backend capabilities, and every completed job leaves a telemetry record
// (queue wait, execution time, which backend ran it).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analyze/diagnostic.hpp"
#include "ir/circuit.hpp"
#include "pauli/pauli_sum.hpp"
#include "sim/noise.hpp"

namespace vqsim::runtime {

enum class JobKind : std::uint8_t {
  kCircuitRun,   // run a circuit, return the final StateVector
  kExpectation,  // run a circuit, return <observable>
  kEnergy,       // full VQE energy evaluation at one parameter set
};

const char* to_string(JobKind kind);

/// Lower value = dispatched first. FIFO within a priority class.
enum class JobPriority : std::uint8_t { kHigh = 0, kNormal = 1, kLow = 2 };

/// What a job needs from the backend that runs it; matched against
/// BackendCaps by the pool's dispatcher.
struct JobRequirements {
  int num_qubits = 0;
  /// Job carries a non-trivial NoiseModel: the backend must model noise
  /// faithfully (density-matrix evolution), not ignore it.
  bool needs_noise = false;
  /// Result must be the exact expectation/state, not a sampled estimate
  /// (excludes Clifford-only backends for general circuits).
  bool needs_exact = true;
  /// The job returns the final state vector (circuit-run jobs): only
  /// backends with state-vector output qualify.
  bool needs_state = false;
  /// The job's circuit is promised Clifford-only, unlocking stabilizer
  /// backends.
  bool clifford_only = false;
};

/// Per-submission knobs.
struct JobOptions {
  JobPriority priority = JobPriority::kNormal;
  /// Applied after every gate on each operand qubit (ignored when
  /// noiseless). A non-trivial model routes the job to a noise-capable
  /// backend.
  NoiseModel noise;
  /// Promise the circuit is Clifford so stabilizer backends qualify.
  bool clifford_only = false;
};

/// Record of one completed (or failed) job, kept by the pool.
struct JobTelemetry {
  std::uint64_t job_id = 0;
  JobKind kind = JobKind::kCircuitRun;
  JobPriority priority = JobPriority::kNormal;
  int backend_id = -1;          // index into the pool's QPU list
  std::string backend_name;
  double queue_wait_seconds = 0.0;  // submit -> dispatch
  double execution_seconds = 0.0;   // dispatch -> completion
  bool failed = false;              // exception delivered via the future
  /// Warning-severity findings from the submit-time circuit verification
  /// (error-severity findings reject the job instead of enqueueing it).
  std::vector<analyze::Diagnostic> warnings;
};

}  // namespace vqsim::runtime
