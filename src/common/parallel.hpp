// Thin OpenMP portability layer.
//
// The simulator's gate kernels are written against these helpers so the code
// builds (serially) even when the compiler lacks OpenMP support, mirroring
// how NWQ-Sim selects CPU/GPU backends at build time.
#pragma once

#include <cstdint>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace vqsim {

/// Number of threads the parallel-for helpers will use.
inline int hardware_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Set the OpenMP thread count (no-op without OpenMP).
inline void set_threads(int n) {
#ifdef _OPENMP
  omp_set_num_threads(n);
#else
  (void)n;
#endif
}

/// True on threads that are currently executing inside a vqsim::runtime
/// thread-pool worker. The parallel-for helpers consult this flag and fall
/// back to serial execution so a pool task that reaches an OpenMP region
/// does not oversubscribe the machine (workers * omp threads); the pool
/// itself is already the parallelism.
inline bool& this_thread_in_pool_worker() {
  thread_local bool flag = false;
  return flag;
}

inline bool in_pool_worker() { return this_thread_in_pool_worker(); }

/// RAII marker set by thread-pool workers for the lifetime of the worker
/// loop (and usable by tests to fake worker context).
class PoolWorkerScope {
 public:
  PoolWorkerScope() : previous_(this_thread_in_pool_worker()) {
    this_thread_in_pool_worker() = true;
  }
  ~PoolWorkerScope() { this_thread_in_pool_worker() = previous_; }
  PoolWorkerScope(const PoolWorkerScope&) = delete;
  PoolWorkerScope& operator=(const PoolWorkerScope&) = delete;

 private:
  bool previous_;
};

/// Parallel loop over [0, n); body must be safe to run concurrently.
/// Falls back to a serial loop below `grain` iterations — the fork/join
/// overhead dominates tiny state vectors — and inside pool workers (see
/// in_pool_worker()).
template <typename Body>
void parallel_for(std::uint64_t n, Body&& body,
                  std::uint64_t grain = 1u << 15) {
#ifdef _OPENMP
  if (n >= grain && !in_pool_worker()) {
    const std::int64_t sn = static_cast<std::int64_t>(n);
#pragma omp parallel for schedule(static)
    for (std::int64_t i = 0; i < sn; ++i) {
      body(static_cast<std::uint64_t>(i));
    }
    return;
  }
#else
  (void)grain;
#endif
  for (std::uint64_t i = 0; i < n; ++i) body(i);
}

/// Parallel loop over the rectangle [0, rows) x [0, cols); body(r, c) must
/// be safe to run concurrently. The flattened index space is collapsed into
/// one OpenMP loop so thin-but-tall and wide-but-short iterations both
/// balance; the same grain and in-worker guards as parallel_for apply.
template <typename Body>
void parallel_for_2d(std::uint64_t rows, std::uint64_t cols, Body&& body,
                     std::uint64_t grain = 1u << 15) {
  const std::uint64_t n = rows * cols;
  if (cols == 0) return;
#ifdef _OPENMP
  if (n >= grain && !in_pool_worker()) {
    const std::int64_t sn = static_cast<std::int64_t>(n);
#pragma omp parallel for schedule(static)
    for (std::int64_t i = 0; i < sn; ++i) {
      const std::uint64_t u = static_cast<std::uint64_t>(i);
      body(u / cols, u % cols);
    }
    return;
  }
#else
  (void)grain;
#endif
  for (std::uint64_t r = 0; r < rows; ++r)
    for (std::uint64_t c = 0; c < cols; ++c) body(r, c);
}

/// Parallel sum-reduction of `term(i)` over [0, n).
template <typename Term>
double parallel_sum(std::uint64_t n, Term&& term,
                    std::uint64_t grain = 1u << 15) {
  double total = 0.0;
#ifdef _OPENMP
  if (n >= grain && !in_pool_worker()) {
    const std::int64_t sn = static_cast<std::int64_t>(n);
#pragma omp parallel for schedule(static) reduction(+ : total)
    for (std::int64_t i = 0; i < sn; ++i) {
      total += term(static_cast<std::uint64_t>(i));
    }
    return total;
  }
#else
  (void)grain;
#endif
  for (std::uint64_t i = 0; i < n; ++i) total += term(i);
  return total;
}

}  // namespace vqsim
