// Gate-cancellation pass: removes adjacent inverse pairs and merges
// consecutive rotations of the same kind on the same operands.
//
// "Adjacent" means no intervening gate touches any shared qubit. This is the
// circuit-rewriting companion to the fusion pass (see paper §6.1 discussion
// of gate cancellation / commutation in compilers such as Sabre).
#pragma once

#include "ir/circuit.hpp"

namespace vqsim {

struct CancelStats {
  std::size_t gates_before = 0;
  std::size_t gates_after = 0;
  std::size_t pairs_cancelled = 0;
  std::size_t rotations_merged = 0;
};

Circuit cancel_gates(const Circuit& circuit, CancelStats* stats = nullptr,
                     double angle_tolerance = 1e-12);

}  // namespace vqsim
