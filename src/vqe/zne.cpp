#include "vqe/zne.hpp"

#include <algorithm>
#include <stdexcept>

namespace vqsim {

double richardson_extrapolate(const std::vector<double>& xs,
                              const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.empty())
    throw std::invalid_argument("richardson_extrapolate: bad inputs");
  // Lagrange interpolation evaluated at x = 0.
  double value = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    double weight = 1.0;
    for (std::size_t j = 0; j < xs.size(); ++j) {
      if (j == i) continue;
      const double denom = xs[i] - xs[j];
      if (denom == 0.0)
        throw std::invalid_argument(
            "richardson_extrapolate: duplicate scale");
      weight *= -xs[j] / denom;
    }
    value += weight * ys[i];
  }
  return value;
}

ZneResult zero_noise_extrapolation(const Circuit& circuit,
                                   const PauliSum& observable,
                                   const NoiseModel& model,
                                   const ZneOptions& options) {
  if (options.scales.size() < 2)
    throw std::invalid_argument(
        "zero_noise_extrapolation: need at least two scales");
  ZneResult result;
  result.scales = options.scales;
  Rng rng(options.seed);
  for (double scale : options.scales) {
    if (scale <= 0.0)
      throw std::invalid_argument(
          "zero_noise_extrapolation: scales must be positive");
    NoiseModel scaled = model;
    scaled.depolarizing = std::min(1.0, model.depolarizing * scale);
    scaled.damping = std::min(1.0, model.damping * scale);
    result.measured.push_back(noisy_expectation(
        circuit, observable, scaled, options.trajectories, rng));
  }
  result.mitigated =
      richardson_extrapolate(result.scales, result.measured);
  return result;
}

}  // namespace vqsim
