// Work-stealing thread pool — the execution substrate of the virtual-QPU
// runtime (paper §6.2 outlook: simulate many VQE circuits simultaneously).
//
// Each worker owns a deque: its own submissions push/pop LIFO at the front
// (cache locality for nested task trees), external submissions round-robin
// onto the backs, and an idle worker steals from the *back* of a victim's
// deque — the classic Cilk/TBB discipline that keeps stolen work coarse.
// Tasks return futures; shutdown is graceful (queued work drains before the
// workers join). Workers mark themselves via common/parallel.hpp's
// in_pool_worker() flag so OpenMP helpers reached from inside a task run
// serially instead of oversubscribing the machine.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/thread_annotations.hpp"

namespace vqsim::runtime {

class ThreadPool {
 public:
  /// `num_workers` <= 0 selects the hardware concurrency (at least 1).
  explicit ThreadPool(int num_workers = 0);

  /// Graceful: drains queued tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// True when the calling thread is one of this process's pool workers.
  static bool in_worker();

  /// Schedule `fn` and return a future for its result. Exceptions thrown by
  /// `fn` propagate through the future. Safe to call from inside a task
  /// (the task is pushed onto the calling worker's own deque).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task]() { (*task)(); });
    return future;
  }

  /// Block until every task submitted so far has finished executing.
  void wait_idle();

  /// Stop accepting work, drain queued tasks, join workers. Idempotent;
  /// called by the destructor.
  void shutdown();

  /// Telemetry: tasks fully executed / tasks that ran on a worker other
  /// than the deque they were queued on.
  std::uint64_t tasks_executed() const {
    return tasks_executed_.load(std::memory_order_relaxed);
  }
  std::uint64_t tasks_stolen() const {
    return tasks_stolen_.load(std::memory_order_relaxed);
  }

 private:
  struct Worker {
    Mutex mutex;
    std::deque<std::function<void()>> deque VQSIM_GUARDED_BY(mutex);
  };

  void enqueue(std::function<void()> task);
  void worker_loop(int index);
  /// Pop from own front, else steal from another worker's back.
  bool try_claim(int self, std::function<void()>* out);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  /// Guards joined_ and serializes the sleep/idle wakeup protocol; the wait
  /// predicates themselves read only atomics.
  Mutex sleep_mutex_;
  std::condition_variable_any sleep_cv_;
  std::condition_variable_any idle_cv_;

  std::atomic<std::uint64_t> next_queue_{0};
  std::atomic<std::uint64_t> queued_{0};     // tasks sitting in deques
  std::atomic<std::uint64_t> in_flight_{0};  // queued + executing
  std::atomic<std::uint64_t> tasks_executed_{0};
  std::atomic<std::uint64_t> tasks_stolen_{0};
  std::atomic<bool> stopping_{false};
  bool joined_ VQSIM_GUARDED_BY(sleep_mutex_) = false;
};

}  // namespace vqsim::runtime
