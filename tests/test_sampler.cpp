#include "sim/sampler.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/expectation.hpp"
#include "sim/noise.hpp"

namespace vqsim {
namespace {

TEST(Sampler, BasisStateIsDeterministic) {
  StateVector sv(3);
  sv.set_basis_state(6);
  Rng rng(301);
  for (idx s : sample_states(sv, 100, rng)) EXPECT_EQ(s, 6u);
}

TEST(Sampler, BellStateFrequencies) {
  StateVector sv(2);
  Circuit c(2);
  c.h(0).cx(0, 1);
  sv.apply_circuit(c);
  Rng rng(302);
  const auto counts = sample_counts(sv, 10000, rng);
  EXPECT_EQ(counts.count(0b01), 0u);
  EXPECT_EQ(counts.count(0b10), 0u);
  const double f00 = static_cast<double>(counts.at(0b00)) / 10000.0;
  EXPECT_NEAR(f00, 0.5, 0.03);
}

TEST(Sampler, ZMaskEstimateConvergesToDirect) {
  StateVector sv(3);
  Circuit c(3);
  c.ry(0.7, 0).ry(1.1, 1).cx(0, 2);
  sv.apply_circuit(c);
  const std::uint64_t mask = 0b101;
  const double exact = expectation_z_mask(sv, mask);
  Rng rng(303);
  const double few = sampled_z_mask_expectation(sv, mask, 100, rng);
  const double many = sampled_z_mask_expectation(sv, mask, 100000, rng);
  EXPECT_NEAR(many, exact, 0.01);
  // Statistical error shrinks with shots (loose sanity check).
  EXPECT_LE(std::abs(many - exact), std::abs(few - exact) + 0.02);
}

TEST(Sampler, ShotCountRespected) {
  StateVector sv(2);
  Rng rng(304);
  EXPECT_EQ(sample_states(sv, 1234, rng).size(), 1234u);
  EXPECT_EQ(sampled_z_mask_expectation(sv, 1, 0, rng), 0.0);
}

TEST(Noise, NoiselessMatchesExactExecution) {
  Circuit c(2);
  c.h(0).cx(0, 1).rz(0.4, 1);
  PauliSum h(2);
  h.add_term(1.0, "ZZ");
  Rng rng(305);
  StateVector exact(2);
  exact.apply_circuit(c);
  EXPECT_NEAR(noisy_expectation(c, h, NoiseModel{}, 3, rng),
              expectation(exact, h), 1e-12);
}

TEST(Noise, DepolarizingShrinksCoherence) {
  // <ZZ> of a Bell state is 1 exactly; depolarizing noise must shrink it.
  Circuit c(2);
  c.h(0).cx(0, 1);
  PauliSum h(2);
  h.add_term(1.0, "ZZ");
  Rng rng(306);
  NoiseModel noisy;
  noisy.depolarizing = 0.2;
  const double e = noisy_expectation(c, h, noisy, 400, rng);
  EXPECT_LT(e, 0.95);
  EXPECT_GT(e, -0.5);
}

TEST(Noise, AmplitudeDampingDecaysExcitedPopulation) {
  // |1> through a long identity-like circuit with damping decays toward |0>.
  Circuit c(1);
  c.x(0);
  for (int i = 0; i < 20; ++i) c.id(0);
  // id gates don't trigger kernels, so damp via repeated z (acts as no-op
  // unitary with noise attached after each gate).
  Circuit c2(1);
  c2.x(0);
  for (int i = 0; i < 20; ++i) {
    c2.z(0);
    c2.z(0);
  }
  PauliSum z(1);
  z.add_term(1.0, "Z");
  Rng rng(307);
  NoiseModel damping;
  damping.damping = 0.1;
  const double e = noisy_expectation(c2, z, damping, 300, rng);
  // Without noise <Z> = -1 (excited); damping pushes toward +1 (ground).
  EXPECT_GT(e, -0.5);
}

TEST(Noise, RejectsZeroTrajectories) {
  Circuit c(1);
  c.x(0);
  PauliSum z(1);
  z.add_term(1.0, "Z");
  Rng rng(308);
  EXPECT_THROW(noisy_expectation(c, z, NoiseModel{}, 0, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace vqsim
