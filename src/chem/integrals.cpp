#include "chem/integrals.hpp"

#include <cmath>
#include <stdexcept>

namespace vqsim {
namespace {

std::size_t idx2(int norb, int p, int q) {
  return static_cast<std::size_t>(p) * static_cast<std::size_t>(norb) +
         static_cast<std::size_t>(q);
}

std::size_t idx4(int norb, int p, int q, int r, int s) {
  const auto n = static_cast<std::size_t>(norb);
  return ((static_cast<std::size_t>(p) * n + static_cast<std::size_t>(q)) * n +
          static_cast<std::size_t>(r)) *
             n +
         static_cast<std::size_t>(s);
}

}  // namespace

MolecularIntegrals MolecularIntegrals::zero(int norb, int nelec) {
  if (norb <= 0 || norb > 32)
    throw std::invalid_argument("MolecularIntegrals: bad orbital count");
  if (nelec < 0 || nelec > 2 * norb || nelec % 2 != 0)
    throw std::invalid_argument(
        "MolecularIntegrals: electron count must be even and fit");
  MolecularIntegrals m;
  m.norb = norb;
  m.nelec = nelec;
  m.h1.assign(static_cast<std::size_t>(norb) * static_cast<std::size_t>(norb),
              0.0);
  const std::size_t n4 = static_cast<std::size_t>(norb) *
                         static_cast<std::size_t>(norb) *
                         static_cast<std::size_t>(norb) *
                         static_cast<std::size_t>(norb);
  m.h2.assign(n4, 0.0);
  return m;
}

double MolecularIntegrals::one_body(int p, int q) const {
  return h1[idx2(norb, p, q)];
}

double MolecularIntegrals::two_body(int p, int q, int r, int s) const {
  return h2[idx4(norb, p, q, r, s)];
}

void MolecularIntegrals::set_one_body(int p, int q, double value) {
  h1[idx2(norb, p, q)] = value;
  h1[idx2(norb, q, p)] = value;
}

void MolecularIntegrals::set_two_body(int p, int q, int r, int s,
                                      double value) {
  h2[idx4(norb, p, q, r, s)] = value;
  h2[idx4(norb, q, p, r, s)] = value;
  h2[idx4(norb, p, q, s, r)] = value;
  h2[idx4(norb, q, p, s, r)] = value;
  h2[idx4(norb, r, s, p, q)] = value;
  h2[idx4(norb, s, r, p, q)] = value;
  h2[idx4(norb, r, s, q, p)] = value;
  h2[idx4(norb, s, r, q, p)] = value;
}

double MolecularIntegrals::symmetry_violation() const {
  double worst = 0.0;
  for (int p = 0; p < norb; ++p)
    for (int q = 0; q < norb; ++q) {
      worst = std::max(worst, std::abs(one_body(p, q) - one_body(q, p)));
      for (int r = 0; r < norb; ++r)
        for (int s = 0; s < norb; ++s) {
          const double v = two_body(p, q, r, s);
          worst = std::max(worst, std::abs(v - two_body(q, p, r, s)));
          worst = std::max(worst, std::abs(v - two_body(p, q, s, r)));
          worst = std::max(worst, std::abs(v - two_body(r, s, p, q)));
        }
    }
  return worst;
}

double MolecularIntegrals::fock(int p, int q) const {
  double f = one_body(p, q);
  for (int i = 0; i < nelec / 2; ++i)
    f += 2.0 * two_body(p, q, i, i) - two_body(p, i, i, q);
  return f;
}

double MolecularIntegrals::hartree_fock_energy() const {
  double e = e_core;
  for (int i = 0; i < nelec / 2; ++i) {
    e += 2.0 * one_body(i, i);
    for (int j = 0; j < nelec / 2; ++j)
      e += 2.0 * two_body(i, i, j, j) - two_body(i, j, j, i);
  }
  return e;
}

FermionOp molecular_hamiltonian(const MolecularIntegrals& ints) {
  const int n = ints.norb;
  FermionOp h(2 * n);
  h.add_scalar(ints.e_core);

  // One-body: sum_{pq, sigma} h_pq a^+_{p sigma} a_{q sigma}.
  for (int p = 0; p < n; ++p)
    for (int q = 0; q < n; ++q) {
      const double v = ints.one_body(p, q);
      if (std::abs(v) < 1e-14) continue;
      for (int s = 0; s < 2; ++s)
        h.add_term(v, {FermionOp::create(spin_orbital(p, s)),
                       FermionOp::annihilate(spin_orbital(q, s))});
    }

  // Two-body: 1/2 sum_{pqrs, sigma tau} <pq|rs> a^+_{p s} a^+_{q t} a_{s t}
  // a_{r s} with physicist <pq|rs> = chemist (pr|qs).
  for (int p = 0; p < n; ++p)
    for (int q = 0; q < n; ++q)
      for (int r = 0; r < n; ++r)
        for (int s = 0; s < n; ++s) {
          const double v = 0.5 * ints.two_body(p, r, q, s);  // <pq|rs>
          if (std::abs(v) < 1e-14) continue;
          for (int sg = 0; sg < 2; ++sg)
            for (int tg = 0; tg < 2; ++tg) {
              const int ip = spin_orbital(p, sg);
              const int iq = spin_orbital(q, tg);
              const int is = spin_orbital(s, tg);
              const int ir = spin_orbital(r, sg);
              if (ip == iq || is == ir) continue;  // Pauli-excluded
              h.add_term(v, {FermionOp::create(ip), FermionOp::create(iq),
                             FermionOp::annihilate(is),
                             FermionOp::annihilate(ir)});
            }
        }
  h.simplify();
  return h;
}

std::uint64_t hf_occupation_mask(int nelec) {
  return nelec >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << nelec) - 1;
}

}  // namespace vqsim
