// Shared-memory state-vector simulator (the NWQ-Sim role, paper §4).
//
// Amplitudes live in one contiguous, cache-aligned array; gate kernels
// enumerate the 2^(n-1) (or 2^(n-2)) amplitude groups in parallel with
// OpenMP — the same index decomposition NWQ-Sim distributes across GPU
// cores (see DESIGN.md substitution table).
#pragma once

#include "common/aligned.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "ir/circuit.hpp"
#include "pauli/pauli_string.hpp"

namespace vqsim {

class StateVector {
 public:
  /// |0...0> over `num_qubits` qubits.
  explicit StateVector(int num_qubits);

  /// Adopt explicit amplitudes (size must be a power of two).
  static StateVector from_amplitudes(AmpVector amplitudes);

  int num_qubits() const { return num_qubits_; }
  idx dim() const { return amp_.size(); }
  cplx* data() { return amp_.data(); }
  const cplx* data() const { return amp_.data(); }
  const AmpVector& amplitudes() const { return amp_; }

  /// Reset to |0...0>.
  void reset();

  /// Reset to the computational basis state |basis>.
  void set_basis_state(idx basis);

  // -- Gate application ----------------------------------------------------
  void apply_gate(const Gate& gate);
  void apply_circuit(const Circuit& circuit);

  /// Generic single-qubit matrix on qubit `q`.
  void apply_mat2(const Mat2& m, int q);
  /// Generic two-qubit matrix on (q0 low slot, q1 high slot).
  void apply_mat4(const Mat4& m, int q0, int q1);
  /// Controlled single-qubit matrix (fast path used by controlled gates).
  void apply_controlled_mat2(const Mat2& m, int control, int target);
  /// Phase diag(1, e^{i phi}) on qubit `q` (fast diagonal path).
  void apply_phase(double phi, int q);

  // -- Pauli operations (direct, no circuit) -------------------------------
  /// |psi> <- P |psi>.
  void apply_pauli(const PauliString& p);
  /// |psi> <- exp(-i theta P) |psi>, exact (P^2 = I).
  void apply_exp_pauli(const PauliString& p, double theta);

  // -- State queries -------------------------------------------------------
  double norm() const;
  void normalize();
  cplx inner_product(const StateVector& other) const;
  double fidelity(const StateVector& other) const;  // |<this|other>|^2
  double probability(idx basis) const;
  /// Probability that `qubit` reads 1.
  double probability_one(int qubit) const;

  /// Projective measurement of one qubit; collapses the state and returns
  /// the outcome (0/1).
  int measure(int qubit, Rng& rng);

  /// Number of bytes held by the amplitude array (Fig. 1c).
  std::size_t memory_bytes() const { return amp_.size() * sizeof(cplx); }

 private:
  int num_qubits_ = 0;
  AmpVector amp_;
};

}  // namespace vqsim
