#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "linalg/csr.hpp"
#include "linalg/dense.hpp"

namespace vqsim {
namespace {

Mat2 random_mat2(Rng& rng) {
  Mat2 m;
  for (auto& v : m.m) v = rng.normal_cplx();
  return m;
}

Mat4 random_mat4(Rng& rng) {
  Mat4 m;
  for (auto& v : m.m) v = rng.normal_cplx();
  return m;
}

TEST(Mat2, IdentityAndMultiply) {
  Rng rng(3);
  const Mat2 a = random_mat2(rng);
  EXPECT_TRUE((a * Mat2::identity()).approx_equal(a));
  EXPECT_TRUE((Mat2::identity() * a).approx_equal(a));
}

TEST(Mat2, AdjointInvolution) {
  Rng rng(4);
  const Mat2 a = random_mat2(rng);
  EXPECT_TRUE(a.adjoint().adjoint().approx_equal(a));
}

TEST(Mat2, AdjointReversesProducts) {
  Rng rng(5);
  const Mat2 a = random_mat2(rng);
  const Mat2 b = random_mat2(rng);
  EXPECT_TRUE((a * b).adjoint().approx_equal(b.adjoint() * a.adjoint()));
}

TEST(Mat4, IdentityAndMultiply) {
  Rng rng(6);
  const Mat4 a = random_mat4(rng);
  EXPECT_TRUE((a * Mat4::identity()).approx_equal(a));
  EXPECT_TRUE((Mat4::identity() * a).approx_equal(a));
}

TEST(Mat4, KronMatchesElementwiseDefinition) {
  Rng rng(7);
  const Mat2 a = random_mat2(rng);
  const Mat2 b = random_mat2(rng);
  const Mat4 k = kron(a, b);
  for (int ra = 0; ra < 2; ++ra)
    for (int rb = 0; rb < 2; ++rb)
      for (int ca = 0; ca < 2; ++ca)
        for (int cb = 0; cb < 2; ++cb)
          EXPECT_NEAR(std::abs(k(ra * 2 + rb, ca * 2 + cb) -
                               a(ra, ca) * b(rb, cb)),
                      0.0, 1e-14);
}

TEST(Mat4, KronMixedProduct) {
  // (a (x) b)(c (x) d) = (a c) (x) (b d).
  Rng rng(8);
  const Mat2 a = random_mat2(rng);
  const Mat2 b = random_mat2(rng);
  const Mat2 c = random_mat2(rng);
  const Mat2 d = random_mat2(rng);
  EXPECT_TRUE((kron(a, b) * kron(c, d)).approx_equal(kron(a * c, b * d), 1e-10));
}

TEST(Mat4, EmbedLowHighCommute) {
  Rng rng(9);
  const Mat2 a = random_mat2(rng);
  const Mat2 b = random_mat2(rng);
  EXPECT_TRUE((embed_low(a) * embed_high(b))
                  .approx_equal(embed_high(b) * embed_low(a), 1e-10));
  EXPECT_TRUE((embed_low(a) * embed_high(b)).approx_equal(kron(b, a), 1e-10));
}

TEST(Mat4, SwapQubitOrderIsInvolution) {
  Rng rng(10);
  const Mat4 a = random_mat4(rng);
  EXPECT_TRUE(swap_qubit_order(swap_qubit_order(a)).approx_equal(a));
}

TEST(Mat4, SwapQubitOrderSwapsKronFactors) {
  Rng rng(11);
  const Mat2 a = random_mat2(rng);
  const Mat2 b = random_mat2(rng);
  EXPECT_TRUE(swap_qubit_order(kron(a, b)).approx_equal(kron(b, a), 1e-12));
}

TEST(DenseMatrix, MultiplyAndApplyAgree) {
  Rng rng(12);
  DenseMatrix a(5, 7);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 7; ++j) a(i, j) = rng.normal_cplx();
  std::vector<cplx> x(7);
  for (auto& v : x) v = rng.normal_cplx();
  DenseMatrix xm(7, 1);
  for (std::size_t j = 0; j < 7; ++j) xm(j, 0) = x[j];
  const std::vector<cplx> y = a.apply(x);
  const DenseMatrix ym = a * xm;
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_NEAR(std::abs(y[i] - ym(i, 0)), 0.0, 1e-12);
}

TEST(DenseMatrix, HermitianCheck) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = cplx{0.0, 1.0};
  a(1, 0) = cplx{0.0, -1.0};
  a(1, 1) = -2.0;
  EXPECT_TRUE(a.is_hermitian());
  a(1, 0) = cplx{0.0, 1.0};
  EXPECT_FALSE(a.is_hermitian());
}

TEST(DenseMatrix, KronDimensions) {
  DenseMatrix a(2, 3);
  DenseMatrix b(4, 5);
  const DenseMatrix k = kron(a, b);
  EXPECT_EQ(k.rows(), 8u);
  EXPECT_EQ(k.cols(), 15u);
}

TEST(Csr, FromTripletsMergesDuplicates) {
  const CsrMatrix m = CsrMatrix::from_triplets(
      3, 3, {0, 0, 1, 2}, {1, 1, 2, 0}, {cplx{1.0, 0}, cplx{2.0, 0}, cplx{3.0, 0}, cplx{4.0, 0}});
  EXPECT_EQ(m.nnz(), 3u);
  const std::vector<cplx> y = m.apply({1.0, 1.0, 1.0});
  EXPECT_NEAR(y[0].real(), 3.0, 1e-14);
  EXPECT_NEAR(y[1].real(), 3.0, 1e-14);
  EXPECT_NEAR(y[2].real(), 4.0, 1e-14);
}

TEST(Csr, MatchesDenseOnRandomMatrix) {
  Rng rng(13);
  const std::size_t n = 16;
  DenseMatrix d(n, n);
  std::vector<std::size_t> is;
  std::vector<std::size_t> js;
  std::vector<cplx> vs;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      if (rng.uniform() < 0.7) continue;  // sparse
      const cplx v = rng.normal_cplx();
      d(i, j) = v;
      is.push_back(i);
      js.push_back(j);
      vs.push_back(v);
    }
  const CsrMatrix s = CsrMatrix::from_triplets(n, n, is, js, vs);
  std::vector<cplx> x(n);
  for (auto& v : x) v = rng.normal_cplx();
  const std::vector<cplx> yd = d.apply(x);
  const std::vector<cplx> ys = s.apply(x);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(yd[i] - ys[i]), 0.0, 1e-12);
}

TEST(Csr, HermitianDetection) {
  const CsrMatrix herm = CsrMatrix::from_triplets(
      2, 2, {0, 1}, {1, 0}, {cplx{0.0, 2.0}, cplx{0.0, -2.0}});
  EXPECT_TRUE(herm.is_hermitian());
  const CsrMatrix nonherm = CsrMatrix::from_triplets(
      2, 2, {0, 1}, {1, 0}, {cplx{0.0, 2.0}, cplx{0.0, 2.0}});
  EXPECT_FALSE(nonherm.is_hermitian());
}

TEST(Csr, RejectsBadTriplets) {
  EXPECT_THROW(CsrMatrix::from_triplets(2, 2, {5}, {0}, {cplx{1.0, 0}}),
               std::out_of_range);
  EXPECT_THROW(CsrMatrix::from_triplets(2, 2, {0, 1}, {0}, {cplx{1.0, 0}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace vqsim
