// Direct expectation vs basis-rotation vs shot sampling (paper §4.2): for
// large systems the deterministic direct path outpaces sampling at equal
// (in fact infinite) accuracy.

#include <benchmark/benchmark.h>

#include "chem/jordan_wigner.hpp"
#include "chem/molecules.hpp"
#include "chem/uccsd.hpp"
#include "common/rng.hpp"
#include "downfold/active_space.hpp"
#include "sim/compiled_op.hpp"
#include "vqe/executor.hpp"

namespace {

using namespace vqsim;

struct Problem {
  PauliSum hamiltonian;
  UccsdAnsatzAdapter ansatz;
  std::vector<double> theta;

  explicit Problem(int nact)
      : hamiltonian(jordan_wigner(molecular_hamiltonian(
            project_active(water_like(10, 10), ActiveSpace{1, nact})))),
        ansatz(2 * nact, 10 - 2) {
    Rng rng(13);
    theta.assign(ansatz.num_parameters(), 0.0);
    for (double& t : theta) t = rng.uniform(-0.1, 0.1);
  }
};

void BM_DirectExpectation(benchmark::State& state) {
  Problem p(static_cast<int>(state.range(0)));
  ExecutorOptions opts;
  opts.mode = ExpectationMode::kDirect;
  SimulatorExecutor e(p.ansatz, p.hamiltonian, opts);
  for (auto _ : state) benchmark::DoNotOptimize(e.evaluate(p.theta));
  state.counters["terms"] = static_cast<double>(p.hamiltonian.size());
}
BENCHMARK(BM_DirectExpectation)->Arg(5)->Arg(6);

void BM_BasisRotationExpectation(benchmark::State& state) {
  Problem p(static_cast<int>(state.range(0)));
  ExecutorOptions opts;
  opts.mode = ExpectationMode::kBasisRotation;
  SimulatorExecutor e(p.ansatz, p.hamiltonian, opts);
  for (auto _ : state) benchmark::DoNotOptimize(e.evaluate(p.theta));
}
BENCHMARK(BM_BasisRotationExpectation)->Arg(5)->Arg(6);

void BM_SampledExpectation(benchmark::State& state) {
  Problem p(static_cast<int>(state.range(0)));
  ExecutorOptions opts;
  opts.mode = ExpectationMode::kSampling;
  opts.shots = static_cast<std::size_t>(state.range(1));
  SimulatorExecutor e(p.ansatz, p.hamiltonian, opts);
  for (auto _ : state) benchmark::DoNotOptimize(e.evaluate(p.theta));
  state.counters["shots_per_group"] = static_cast<double>(opts.shots);
}
BENCHMARK(BM_SampledExpectation)
    ->Args({5, 1024})
    ->Args({5, 16384})
    ->Args({6, 1024});

void BM_CompiledOperatorExpectation(benchmark::State& state) {
  Problem p(static_cast<int>(state.range(0)));
  const int nq = p.ansatz.num_qubits();
  const CompiledPauliSum compiled(p.hamiltonian, nq);
  StateVector psi(nq);
  p.ansatz.prepare(&psi, p.theta);
  for (auto _ : state) benchmark::DoNotOptimize(compiled.expectation(psi));
  state.counters["mask_families"] =
      static_cast<double>(compiled.mask_families());
}
BENCHMARK(BM_CompiledOperatorExpectation)->Arg(5)->Arg(6);

}  // namespace
