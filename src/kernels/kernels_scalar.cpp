// Scalar instantiation of the kernel table — always compiled, the
// reference the AVX2 table must match bit-for-bit (this TU is also built
// with -ffp-contract=off so a host compiler defaulting to contraction
// cannot fuse a rounding away).

#include "kernels/kernel_prelude.hpp"

namespace vqsim::kernels {
namespace scalar_impl {

#include "kernels/kernel_impl.inc"

}  // namespace scalar_impl

const KernelTable& scalar_table() {
  static const KernelTable t = scalar_impl::make_table("scalar");
  return t;
}

}  // namespace vqsim::kernels
