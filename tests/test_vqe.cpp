#include "vqe/vqe.hpp"

#include <gtest/gtest.h>

#include "chem/fci.hpp"
#include "chem/jordan_wigner.hpp"
#include "chem/molecules.hpp"

namespace vqsim {
namespace {

struct H2Fixture {
  PauliSum hamiltonian = jordan_wigner(molecular_hamiltonian(h2_sto3g()));
  double e_fci =
      fci_ground_state(molecular_hamiltonian(h2_sto3g()), 4, 2).energy;
  double e_hf = h2_sto3g().hartree_fock_energy();
};

TEST(Vqe, H2UccsdReachesFciWithNelderMead) {
  H2Fixture f;
  const UccsdAnsatzAdapter ansatz(4, 2);
  VqeOptions opts;
  const VqeResult r = run_vqe(ansatz, f.hamiltonian, opts);
  // UCCSD is exact for 2 electrons: chemical accuracy and far beyond.
  EXPECT_NEAR(r.energy, f.e_fci, 1e-6);
  EXPECT_GE(r.energy, f.e_fci - 1e-9);  // variational
  EXPECT_LT(r.energy, f.e_hf - 1e-3);   // recovers correlation
}

TEST(Vqe, H2WithAdamOptimizer) {
  H2Fixture f;
  const UccsdAnsatzAdapter ansatz(4, 2);
  VqeOptions opts;
  opts.optimizer = OptimizerKind::kAdam;
  opts.adam.iterations = 300;
  opts.adam.learning_rate = 0.1;
  const VqeResult r = run_vqe(ansatz, f.hamiltonian, opts);
  EXPECT_NEAR(r.energy, f.e_fci, 1e-4);
}

TEST(Vqe, H2WithSpsaRecoversMostCorrelation) {
  H2Fixture f;
  const UccsdAnsatzAdapter ansatz(4, 2);
  VqeOptions opts;
  opts.optimizer = OptimizerKind::kSpsa;
  opts.spsa.iterations = 800;
  const VqeResult r = run_vqe(ansatz, f.hamiltonian, opts);
  // Stochastic optimizer: looser bar, but must beat HF clearly.
  EXPECT_LT(r.energy, f.e_hf - 0.005);
}

TEST(Vqe, SamplingModeApproachesExactOptimum) {
  H2Fixture f;
  const UccsdAnsatzAdapter ansatz(4, 2);
  VqeOptions opts;
  opts.executor.mode = ExpectationMode::kSampling;
  opts.executor.shots = 50000;
  opts.nelder_mead.max_evaluations = 400;
  const VqeResult r = run_vqe(ansatz, f.hamiltonian, opts);
  EXPECT_NEAR(r.energy, f.e_fci, 0.05);
}

TEST(Vqe, HardwareEfficientAnsatzBeatsHartreeFock) {
  H2Fixture f;
  const HardwareEfficientAnsatz ansatz(4, 2, 2);
  VqeOptions opts;
  opts.nelder_mead.max_evaluations = 6000;
  opts.nelder_mead.initial_step = 0.3;
  const VqeResult r = run_vqe(ansatz, f.hamiltonian, opts);
  EXPECT_LT(r.energy, f.e_hf - 1e-3);
  EXPECT_GE(r.energy, f.e_fci - 1e-9);
}

TEST(Vqe, ResultCarriesCostModelAndStats) {
  H2Fixture f;
  const UccsdAnsatzAdapter ansatz(4, 2);
  VqeOptions opts;
  opts.nelder_mead.max_evaluations = 100;
  const VqeResult r = run_vqe(ansatz, f.hamiltonian, opts);
  EXPECT_EQ(r.executor_stats.energy_evaluations, r.evaluations);
  EXPECT_GT(r.cost_model.non_caching_gates(), r.cost_model.caching_gates());
  EXPECT_FALSE(r.history.empty());
}

TEST(Vqe, HubbardDimerExactInMolecularOrbitalBasis) {
  // Half-filled two-site Hubbard expressed in the bonding/antibonding (MO)
  // basis, where the doubly-occupied bonding orbital is the proper
  // reference determinant: (pq|rs) = U/4 (1 + (-1)^{p+q+r+s}).
  const double t = 1.0;
  const double u = 4.0;
  MolecularIntegrals mo = MolecularIntegrals::zero(2, 2);
  mo.set_one_body(0, 0, -t);
  mo.set_one_body(1, 1, t);
  for (int p = 0; p < 2; ++p)
    for (int q = 0; q < 2; ++q)
      for (int r = 0; r < 2; ++r)
        for (int s = 0; s < 2; ++s)
          if ((p + q + r + s) % 2 == 0) mo.set_two_body(p, q, r, s, u / 2.0);

  const FermionOp h_fermion = molecular_hamiltonian(mo);
  const double e_fci = fci_ground_state(h_fermion, 4, 2).energy;
  // Analytic ground energy of the Hubbard dimer.
  EXPECT_NEAR(e_fci, u / 2.0 - std::sqrt(u * u / 4.0 + 4.0 * t * t), 1e-10);

  const PauliSum h = jordan_wigner(h_fermion);
  const UccsdAnsatzAdapter ansatz(4, 2);
  const VqeResult r = run_vqe(ansatz, h, {});
  EXPECT_NEAR(r.energy, e_fci, 1e-6);
}

TEST(Vqe, RejectsBadInitialParameters) {
  H2Fixture f;
  const UccsdAnsatzAdapter ansatz(4, 2);
  VqeOptions opts;
  opts.initial_parameters = {0.1};  // wrong length
  EXPECT_THROW(run_vqe(ansatz, f.hamiltonian, opts), std::invalid_argument);
}

}  // namespace
}  // namespace vqsim
