// Thin OpenMP portability layer.
//
// The simulator's gate kernels are written against these helpers so the code
// builds (serially) even when the compiler lacks OpenMP support, mirroring
// how NWQ-Sim selects CPU/GPU backends at build time.
#pragma once

#include <cstdint>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace vqsim {

/// Number of threads the parallel-for helpers will use.
inline int hardware_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Set the OpenMP thread count (no-op without OpenMP).
inline void set_threads(int n) {
#ifdef _OPENMP
  omp_set_num_threads(n);
#else
  (void)n;
#endif
}

/// Parallel loop over [0, n); body must be safe to run concurrently.
/// Falls back to a serial loop below `grain` iterations — the fork/join
/// overhead dominates tiny state vectors.
template <typename Body>
void parallel_for(std::uint64_t n, Body&& body,
                  std::uint64_t grain = 1u << 15) {
#ifdef _OPENMP
  if (n >= grain) {
    const std::int64_t sn = static_cast<std::int64_t>(n);
#pragma omp parallel for schedule(static)
    for (std::int64_t i = 0; i < sn; ++i) {
      body(static_cast<std::uint64_t>(i));
    }
    return;
  }
#else
  (void)grain;
#endif
  for (std::uint64_t i = 0; i < n; ++i) body(i);
}

/// Parallel sum-reduction of `term(i)` over [0, n).
template <typename Term>
double parallel_sum(std::uint64_t n, Term&& term,
                    std::uint64_t grain = 1u << 15) {
  double total = 0.0;
#ifdef _OPENMP
  if (n >= grain) {
    const std::int64_t sn = static_cast<std::int64_t>(n);
#pragma omp parallel for schedule(static) reduction(+ : total)
    for (std::int64_t i = 0; i < sn; ++i) {
      total += term(static_cast<std::uint64_t>(i));
    }
    return total;
  }
#else
  (void)grain;
#endif
  for (std::uint64_t i = 0; i < n; ++i) total += term(i);
  return total;
}

}  // namespace vqsim
