file(REMOVE_RECURSE
  "CMakeFiles/test_spin_vqd.dir/test_spin_vqd.cpp.o"
  "CMakeFiles/test_spin_vqd.dir/test_spin_vqd.cpp.o.d"
  "test_spin_vqd"
  "test_spin_vqd.pdb"
  "test_spin_vqd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spin_vqd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
