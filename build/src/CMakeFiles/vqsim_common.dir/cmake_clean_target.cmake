file(REMOVE_RECURSE
  "libvqsim_common.a"
)
