// Structured (JSON) serialization of workflow reports.
//
// The XACC-role layer returns rich result objects; downstream tooling
// (plots, regression dashboards, the EXPERIMENTS.md tables) consumes them
// as JSON. The writer is dependency-free and covers the full report
// surface; a minimal reader ingests what the tests round-trip.
#pragma once

#include <string>

#include "api/workflow.hpp"

namespace vqsim {

/// Serialize a report to a JSON object string (stable key order).
std::string report_to_json(const WorkflowReport& report);

/// Minimal JSON value extraction for flat numeric/string keys produced by
/// report_to_json (test/tooling support; not a general JSON parser).
/// Returns true and fills `out` when `key` holds a number.
bool json_get_number(const std::string& json, const std::string& key,
                     double* out);

}  // namespace vqsim
