#include "vqe/batch.hpp"

#include <stdexcept>

#include "sim/compiled_op.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace vqsim {

std::vector<double> evaluate_batch(
    const Ansatz& ansatz, const PauliSum& observable,
    const std::vector<std::vector<double>>& parameter_sets) {
  const int nq = ansatz.num_qubits();
  for (const auto& theta : parameter_sets)
    if (theta.size() != ansatz.num_parameters())
      throw std::invalid_argument("evaluate_batch: parameter count");

  const CompiledPauliSum compiled(observable, nq);
  std::vector<double> energies(parameter_sets.size(), 0.0);

  const auto run_entry = [&](std::size_t i, StateVector& psi) {
    ansatz.prepare(&psi, parameter_sets[i]);
    energies[i] = compiled.expectation(psi);
  };

#ifdef _OPENMP
  if (omp_get_max_threads() > 1 && parameter_sets.size() > 1) {
#pragma omp parallel
    {
      StateVector psi(nq);
#pragma omp for schedule(dynamic)
      for (std::int64_t i = 0;
           i < static_cast<std::int64_t>(parameter_sets.size()); ++i)
        run_entry(static_cast<std::size_t>(i), psi);
    }
    return energies;
  }
#endif
  StateVector psi(nq);
  for (std::size_t i = 0; i < parameter_sets.size(); ++i) run_entry(i, psi);
  return energies;
}

std::vector<double> batched_gradient(const Ansatz& ansatz,
                                     const PauliSum& observable,
                                     std::span<const double> theta,
                                     double step) {
  const std::size_t p = theta.size();
  std::vector<std::vector<double>> batch;
  batch.reserve(2 * p);
  for (std::size_t k = 0; k < p; ++k) {
    std::vector<double> plus(theta.begin(), theta.end());
    plus[k] += step;
    batch.push_back(std::move(plus));
    std::vector<double> minus(theta.begin(), theta.end());
    minus[k] -= step;
    batch.push_back(std::move(minus));
  }
  const std::vector<double> e = evaluate_batch(ansatz, observable, batch);
  std::vector<double> grad(p, 0.0);
  for (std::size_t k = 0; k < p; ++k)
    grad[k] = (e[2 * k] - e[2 * k + 1]) / (2.0 * step);
  return grad;
}

}  // namespace vqsim
