#include "resilience/circuit_breaker.hpp"

namespace vqsim::resilience {

const char* to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "?";
}

bool CircuitBreaker::would_admit(Clock::time_point now) const {
  if (!policy_.enabled) return true;
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      return now >= open_until_;  // quarantine elapsed: probe allowed
    case BreakerState::kHalfOpen:
      return !probe_in_flight_;
  }
  return true;
}

void CircuitBreaker::acquire(Clock::time_point now) {
  if (!policy_.enabled) return;
  if (state_ == BreakerState::kOpen && now >= open_until_)
    state_ = BreakerState::kHalfOpen;
  if (state_ == BreakerState::kHalfOpen) probe_in_flight_ = true;
}

void CircuitBreaker::on_success() {
  state_ = BreakerState::kClosed;
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
}

bool CircuitBreaker::on_failure(Clock::time_point now) {
  ++consecutive_failures_;
  const bool failed_probe =
      policy_.enabled && state_ == BreakerState::kHalfOpen;
  probe_in_flight_ = false;
  if (!policy_.enabled) return false;
  if (failed_probe || consecutive_failures_ >= policy_.failure_threshold) {
    state_ = BreakerState::kOpen;
    open_until_ = now + policy_.open_duration;
    ++opens_;
    return true;
  }
  return false;
}

bool CircuitBreaker::trip(Clock::time_point now) {
  if (!policy_.enabled) return false;
  probe_in_flight_ = false;
  const bool was_quarantined =
      state_ == BreakerState::kOpen && now < open_until_;
  state_ = BreakerState::kOpen;
  open_until_ = now + policy_.open_duration;
  if (was_quarantined) return false;
  ++opens_;
  return true;
}

BreakerState CircuitBreaker::state(Clock::time_point now) const {
  if (state_ == BreakerState::kOpen && now >= open_until_ &&
      policy_.enabled)
    return BreakerState::kHalfOpen;
  return state_;
}

}  // namespace vqsim::resilience
