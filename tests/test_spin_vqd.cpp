#include <gtest/gtest.h>

#include <algorithm>

#include "chem/fci.hpp"
#include "chem/jordan_wigner.hpp"
#include "chem/molecules.hpp"
#include "chem/spin.hpp"
#include "chem/uccsd.hpp"
#include "common/rng.hpp"
#include "linalg/jacobi.hpp"
#include "sim/expectation.hpp"
#include "vqe/vqd.hpp"

namespace vqsim {
namespace {

double basis_expectation(const PauliSum& op, idx basis, int nq) {
  StateVector psi(nq);
  psi.set_basis_state(basis);
  return expectation(psi, op);
}

TEST(Spin, DeterminantEigenvalues) {
  const int norb = 2;
  const PauliSum sz = jordan_wigner(sz_operator(norb));
  const PauliSum s2 = jordan_wigner(s_squared_operator(norb));

  // |alpha_0>: s = 1/2 -> Sz = 1/2, S^2 = 3/4.
  EXPECT_NEAR(basis_expectation(sz, 0b0001, 4), 0.5, 1e-12);
  EXPECT_NEAR(basis_expectation(s2, 0b0001, 4), 0.75, 1e-12);
  // |alpha_0 beta_0>: closed shell -> Sz = 0, S^2 = 0.
  EXPECT_NEAR(basis_expectation(sz, 0b0011, 4), 0.0, 1e-12);
  EXPECT_NEAR(basis_expectation(s2, 0b0011, 4), 0.0, 1e-12);
  // |alpha_0 alpha_1>: triplet -> Sz = 1, S^2 = 2.
  EXPECT_NEAR(basis_expectation(sz, 0b0101, 4), 1.0, 1e-12);
  EXPECT_NEAR(basis_expectation(s2, 0b0101, 4), 2.0, 1e-12);
  // |beta_0 beta_1>: Sz = -1, S^2 = 2.
  EXPECT_NEAR(basis_expectation(sz, 0b1010, 4), -1.0, 1e-12);
  EXPECT_NEAR(basis_expectation(s2, 0b1010, 4), 2.0, 1e-12);
}

TEST(Spin, OperatorsCommuteWithMolecularHamiltonian) {
  const PauliSum h = jordan_wigner(molecular_hamiltonian(h2_sto3g()));
  const PauliSum sz = jordan_wigner(sz_operator(2));
  const PauliSum s2 = jordan_wigner(s_squared_operator(2));
  EXPECT_TRUE(h.commutator(sz).empty());
  PauliSum c2 = h.commutator(s2);
  c2.simplify(1e-9);
  EXPECT_TRUE(c2.empty());
}

TEST(Spin, H2GroundStateIsSinglet) {
  const FermionOp hf = molecular_hamiltonian(h2_sto3g());
  const FciResult fci = fci_ground_state(hf, 4, 2);
  // Build the ground state over the full register and evaluate S^2.
  const auto dets = sector_determinants(4, 2);
  AmpVector amps(16, cplx{0.0, 0.0});
  for (std::size_t i = 0; i < dets.size(); ++i)
    amps[dets[i]] = fci.ground_state[i];
  StateVector psi = StateVector::from_amplitudes(std::move(amps));
  const PauliSum s2 = jordan_wigner(s_squared_operator(2));
  EXPECT_NEAR(expectation(psi, s2), 0.0, 1e-8);
}

TEST(Spin, UccsdPreservesSz) {
  const UccsdAnsatz ansatz(6, 2);
  Rng rng(701);
  std::vector<double> theta(ansatz.num_parameters());
  for (double& t : theta) t = rng.uniform(-0.5, 0.5);
  StateVector psi(6);
  ansatz.apply(&psi, theta);
  const PauliSum sz = jordan_wigner(sz_operator(3));
  EXPECT_NEAR(expectation(psi, sz), 0.0, 1e-10);
  const PauliSum sz2 = sz * sz;
  EXPECT_NEAR(expectation(psi, sz2), 0.0, 1e-9);  // zero variance
}

TEST(Vqd, H2GroundAndExcitedStatesWithExpressiveAnsatz) {
  const FermionOp hf = molecular_hamiltonian(h2_sto3g());
  const PauliSum h = jordan_wigner(hf);
  const EigenSystem full = hermitian_eigensystem(pauli_sum_matrix(h, 4));

  // The hardware-efficient ansatz spans all symmetry sectors, so the
  // deflated state can reach the true first excited level.
  const HardwareEfficientAnsatz ansatz(4, 2, 2);
  VqdOptions opts;
  opts.num_states = 2;
  opts.beta = 10.0;
  opts.vqe.nelder_mead.max_evaluations = 20000;
  opts.vqe.nelder_mead.initial_step = 0.3;
  const VqdResult r = run_vqd(ansatz, h, opts);

  ASSERT_EQ(r.energies.size(), 2u);
  EXPECT_NEAR(r.energies[0], full.eigenvalues.front(), 1e-5);
  EXPECT_NEAR(r.energies[1], full.eigenvalues[1], 1e-4);
}

TEST(Vqd, SymmetryRestrictedAnsatzFindsConstrainedMinimum) {
  // With the particle/Sz-conserving UCCSD ansatz the true first excited
  // levels (other symmetry sectors) are unreachable; VQD returns the
  // minimum orthogonal to the ground state *within the manifold* — above
  // the ground state, below the reachable doubly-excited determinant.
  const FermionOp hf = molecular_hamiltonian(h2_sto3g());
  const PauliSum h = jordan_wigner(hf);

  const UccsdAnsatzAdapter ansatz(4, 2);
  VqdOptions opts;
  opts.num_states = 2;
  opts.beta = 10.0;
  opts.vqe.nelder_mead.max_evaluations = 4000;
  const VqdResult r = run_vqd(ansatz, h, opts);

  EXPECT_NEAR(r.energies[0], -1.13729, 1e-4);
  EXPECT_GT(r.energies[1], r.energies[0] + 0.1);
  EXPECT_LT(r.energies[1], 0.0);
}

TEST(Vqd, RejectsBadOptions) {
  const PauliSum h(2);
  const UccsdAnsatzAdapter ansatz(4, 2);
  VqdOptions opts;
  opts.num_states = 0;
  EXPECT_THROW(run_vqd(ansatz, h, opts), std::invalid_argument);
}

}  // namespace
}  // namespace vqsim
