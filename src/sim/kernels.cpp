// Gate-application kernels.
//
// Since the vqsim::kernels refactor this file is the StateVector-facing
// dispatch only: validation, telemetry, and gate-kind routing. The amplitude
// loops live in src/kernels (one shared scalar/AVX2 table also used by the
// batched exec engine and the distributed backend); fixed-matrix gates hit
// the constant-folded generated kernels, everything else the generic strided
// ones. The groups are independent, which is exactly the parallelism NWQ-Sim
// maps onto GPU threads and we map onto OpenMP (paper §4, "distributing
// parallel simulation of gates and state updates across thousands of cores").
//
// "sim.amps_touched_total" counts amplitudes actually updated, as reported
// by the kernels themselves: a phase gate touches half the register, CZ a
// quarter — the seed charged full sweeps for the former and nothing at all
// for the latter.

#include <array>
#include <bit>
#include <cmath>
#include <stdexcept>
#include <string>

#include "common/bits.hpp"
#include "kernels/kernels.hpp"
#include "sim/state_vector.hpp"
#include "telemetry/telemetry.hpp"

namespace vqsim {

#if !defined(VQSIM_TELEMETRY_DISABLED)
namespace {

// Per-gate-kind apply counters ("sim.gates.cx_total", ...), registered once
// and indexed by GateKind so the dispatch hot path is one table load plus a
// sharded add. kMat2 is the highest enumerator.
telemetry::Counter& gate_kind_counter(GateKind kind) {
  static const auto table = [] {
    std::array<telemetry::Counter*, static_cast<std::size_t>(GateKind::kMat2) +
                                        1>
        t{};
    for (std::size_t k = 0; k < t.size(); ++k)
      t[k] = &telemetry::MetricsRegistry::global().counter(
          std::string("sim.gates.") + gate_name(static_cast<GateKind>(k)) +
          "_total");
    return t;
  }();
  return *table[static_cast<std::size_t>(kind)];
}

}  // namespace
#endif  // !VQSIM_TELEMETRY_DISABLED

void StateVector::apply_mat2(const Mat2& m, int q) {
  if (q < 0 || q >= num_qubits_) throw std::out_of_range("apply_mat2: qubit");
  const cplx mm[4] = {m(0, 0), m(0, 1), m(1, 0), m(1, 1)};
  const idx touched = kernels::active_table().mat2(
      amp_.data(), static_cast<idx>(amp_.size()), 1, static_cast<unsigned>(q),
      mm);
  VQSIM_COUNTER(c_amps, "sim.amps_touched_total");
  VQSIM_COUNTER_ADD(c_amps, touched);
  (void)touched;
}

void StateVector::apply_mat4(const Mat4& m, int q0, int q1) {
  if (q0 < 0 || q0 >= num_qubits_ || q1 < 0 || q1 >= num_qubits_ || q0 == q1)
    throw std::out_of_range("apply_mat4: qubits");
  // Row-major with the 4x4 index convention: slot 1 = q0 bit set, slot 2 =
  // q1 bit set.
  cplx mm[16];
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c) mm[r * 4 + c] = m(r, c);
  const idx touched = kernels::active_table().mat4(
      amp_.data(), static_cast<idx>(amp_.size()), 1, static_cast<unsigned>(q0),
      static_cast<unsigned>(q1), mm);
  VQSIM_COUNTER(c_amps, "sim.amps_touched_total");
  VQSIM_COUNTER_ADD(c_amps, touched);
  (void)touched;
}

void StateVector::apply_controlled_mat2(const Mat2& m, int control,
                                        int target) {
  if (control < 0 || control >= num_qubits_ || target < 0 ||
      target >= num_qubits_ || control == target)
    throw std::out_of_range("apply_controlled_mat2: qubits");
  const cplx mm[4] = {m(0, 0), m(0, 1), m(1, 0), m(1, 1)};
  const idx touched = kernels::active_table().cmat2(
      amp_.data(), static_cast<idx>(amp_.size()), 1,
      static_cast<unsigned>(control), static_cast<unsigned>(target), mm);
  VQSIM_COUNTER(c_amps, "sim.amps_touched_total");
  VQSIM_COUNTER_ADD(c_amps, touched);
  (void)touched;
}

void StateVector::apply_phase(double phi, int q) {
  if (q < 0 || q >= num_qubits_) throw std::out_of_range("apply_phase");
  const cplx e[1] = {std::exp(kI * phi)};
  const std::uint64_t mask = pow2(static_cast<unsigned>(q));
  const idx touched = kernels::active_table().diag_mask(
      amp_.data(), static_cast<idx>(amp_.size()), 1, mask, e);
  VQSIM_COUNTER(c_amps, "sim.amps_touched_total");
  VQSIM_COUNTER_ADD(c_amps, touched);
  (void)touched;
}

void StateVector::apply_pauli(const PauliString& p) {
  if (p.min_qubits() > num_qubits_)
    throw std::out_of_range("apply_pauli: string exceeds register");
  VQSIM_COUNTER(c_applies, "sim.pauli_applies_total");
  VQSIM_COUNTER_INC(c_applies);
  const std::uint64_t xm = p.x;
  const std::uint64_t zm = p.z;
  static const cplx kIPow[4] = {cplx{1, 0}, cplx{0, 1}, cplx{-1, 0},
                                cplx{0, -1}};
  const cplx global[1] = {kIPow[std::popcount(xm & zm) % 4]};
  const idx touched = kernels::active_table().pauli(
      amp_.data(), static_cast<idx>(amp_.size()), 1, xm, zm, global);
  VQSIM_COUNTER(c_amps, "sim.amps_touched_total");
  VQSIM_COUNTER_ADD(c_amps, touched);
  (void)touched;
}

void StateVector::apply_exp_pauli(const PauliString& p, double theta) {
  if (p.min_qubits() > num_qubits_)
    throw std::out_of_range("apply_exp_pauli: string exceeds register");
  // The exp-Pauli rotation is the whole-register kernel UCCSD/ADAPT state
  // preparation is built from (it bypasses apply_circuit), so it carries its
  // own span — without it a pure-UCCSD trace would show no sim activity.
  VQSIM_SPAN(/*cat=*/"sim", "exp_pauli");
  VQSIM_COUNTER(c_applies, "sim.exp_pauli_applies_total");
  VQSIM_COUNTER_INC(c_applies);
  VQSIM_COUNTER(c_amps, "sim.amps_touched_total");
  const kernels::KernelTable& t = kernels::active_table();
  cplx* a = amp_.data();
  const idx dim = static_cast<idx>(amp_.size());
  const std::uint64_t xm = p.x;
  const std::uint64_t zm = p.z;
  const double c = std::cos(theta);
  const double s = std::sin(theta);
  if (p.is_identity()) {
    const cplx e[1] = {std::exp(-kI * theta)};
    const idx touched = t.scale(a, dim, 1, e);
    VQSIM_COUNTER_ADD(c_amps, touched);
    (void)touched;
    return;
  }
  if (xm == 0) {
    // Diagonal: amplitude i picks up exp(-i theta * s_i), s_i = +/-1.
    const cplx e[2] = {cplx{c, -s}, cplx{c, s}};  // even / odd z-parity
    const idx touched = t.diag_z(a, dim, 1, zm, e);
    VQSIM_COUNTER_ADD(c_amps, touched);
    (void)touched;
    return;
  }
  static const cplx kIPow[4] = {cplx{1, 0}, cplx{0, 1}, cplx{-1, 0},
                                cplx{0, -1}};
  const cplx global[1] = {kIPow[std::popcount(xm & zm) % 4]};
  const double cc[1] = {c};
  const cplx mis[1] = {cplx{0.0, -s}};  // -i sin(theta)
  const idx touched = t.exp_pauli(a, dim, 1, xm, zm, cc, mis, global);
  VQSIM_COUNTER_ADD(c_amps, touched);
  (void)touched;
}

void StateVector::apply_gate(const Gate& g) {
#if !defined(VQSIM_TELEMETRY_DISABLED)
  VQSIM_COUNTER(c_gates, "sim.gates_total");
  c_gates.inc();
  gate_kind_counter(g.kind).inc();
#endif
  const kernels::KernelTable& t = kernels::active_table();
  const idx dim = static_cast<idx>(amp_.size());
  // Fixed-matrix gates dispatch straight into the generated constant-folded
  // kernels (1q: X, Y, Z, H, S, Sdg, T, Tdg, SX, SXdg; 2q: CX, CY, CZ, CH,
  // Swap).
  if (auto* f1 = t.fixed1[static_cast<std::size_t>(g.kind)]) {
    if (g.q0 < 0 || g.q0 >= num_qubits_)
      throw std::out_of_range("apply_gate: qubit");
    const idx touched =
        f1(amp_.data(), dim, 1, static_cast<unsigned>(g.q0));
    VQSIM_COUNTER(c_amps, "sim.amps_touched_total");
    VQSIM_COUNTER_ADD(c_amps, touched);
    (void)touched;
    return;
  }
  if (auto* f2 = t.fixed2[static_cast<std::size_t>(g.kind)]) {
    if (g.q0 < 0 || g.q0 >= num_qubits_ || g.q1 < 0 || g.q1 >= num_qubits_ ||
        g.q0 == g.q1)
      throw std::out_of_range("apply_gate: qubits");
    const idx touched = f2(amp_.data(), dim, 1, static_cast<unsigned>(g.q0),
                           static_cast<unsigned>(g.q1));
    VQSIM_COUNTER(c_amps, "sim.amps_touched_total");
    VQSIM_COUNTER_ADD(c_amps, touched);
    (void)touched;
    return;
  }
  switch (g.kind) {
    case GateKind::kI:
      return;
    case GateKind::kS:
      return apply_phase(kPi / 2, g.q0);
    case GateKind::kSdg:
      return apply_phase(-kPi / 2, g.q0);
    case GateKind::kT:
      return apply_phase(kPi / 4, g.q0);
    case GateKind::kTdg:
      return apply_phase(-kPi / 4, g.q0);
    case GateKind::kP:
      return apply_phase(g.params[0], g.q0);
    case GateKind::kRZ: {
      // Diagonal fast path: RZ = e^{-i theta Z / 2}.
      return apply_exp_pauli(PauliString::single_axis(PauliAxis::kZ, g.q0),
                             g.params[0] / 2);
    }
    case GateKind::kX:
    case GateKind::kY:
    case GateKind::kZ:
    case GateKind::kH:
    case GateKind::kSX:
    case GateKind::kSXdg:
      // Generated-kernel gates; only reachable here if codegen dropped one.
      return apply_mat2(gate_matrix2(g), g.q0);
    case GateKind::kRX:
    case GateKind::kRY:
    case GateKind::kU3:
    case GateKind::kMat1:
      return apply_mat2(gate_matrix2(g), g.q0);
    case GateKind::kCX:
    case GateKind::kCY:
    case GateKind::kCH:
    case GateKind::kCRX:
    case GateKind::kCRY:
      return apply_controlled_mat2(gate_controlled_block(g), g.q0, g.q1);
    case GateKind::kCRZ: {
      // Diagonal fast path: the controlled block is diag(e^{-i t/2},
      // e^{+i t/2}) — no need to stream the dense controlled 2x2.
      if (g.q0 < 0 || g.q0 >= num_qubits_ || g.q1 < 0 || g.q1 >= num_qubits_ ||
          g.q0 == g.q1)
        throw std::out_of_range("apply_gate: qubits");
      const Mat2 u = gate_controlled_block(g);
      const cplx e[2] = {u(0, 0), u(1, 1)};
      const idx touched =
          t.cdiag2(amp_.data(), dim, 1, static_cast<unsigned>(g.q0),
                   static_cast<unsigned>(g.q1), e);
      VQSIM_COUNTER(c_amps, "sim.amps_touched_total");
      VQSIM_COUNTER_ADD(c_amps, touched);
      (void)touched;
      return;
    }
    case GateKind::kCZ:
    case GateKind::kCP: {
      // Doubly-diagonal fast path: phase on |11> (CZ normally takes the
      // generated kernel above; this branch keeps the runtime route for it
      // should codegen ever drop it).
      if (g.q0 < 0 || g.q0 >= num_qubits_ || g.q1 < 0 || g.q1 >= num_qubits_ ||
          g.q0 == g.q1)
        throw std::out_of_range("apply_gate: qubits");
      const double phi = g.kind == GateKind::kCZ ? kPi : g.params[0];
      const cplx e[1] = {std::exp(kI * phi)};
      const std::uint64_t mask = pow2(static_cast<unsigned>(g.q0)) |
                                 pow2(static_cast<unsigned>(g.q1));
      const idx touched = t.diag_mask(amp_.data(), dim, 1, mask, e);
      VQSIM_COUNTER(c_amps, "sim.amps_touched_total");
      VQSIM_COUNTER_ADD(c_amps, touched);
      (void)touched;
      return;
    }
    case GateKind::kRZZ:
      // exp(-i theta/2 Z Z) — diagonal Pauli exponential fast path.
      return apply_exp_pauli(
          [&] {
            PauliString p;
            p.set_axis(g.q0, PauliAxis::kZ);
            p.set_axis(g.q1, PauliAxis::kZ);
            return p;
          }(),
          g.params[0] / 2);
    case GateKind::kSwap:
    case GateKind::kRXX:
    case GateKind::kRYY:
    case GateKind::kMat2:
      return apply_mat4(gate_matrix4(g), g.q0, g.q1);
  }
  throw std::invalid_argument("apply_gate: unhandled gate kind");
}

}  // namespace vqsim
