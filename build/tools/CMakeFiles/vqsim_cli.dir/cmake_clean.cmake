file(REMOVE_RECURSE
  "CMakeFiles/vqsim_cli.dir/vqsim_cli.cpp.o"
  "CMakeFiles/vqsim_cli.dir/vqsim_cli.cpp.o.d"
  "vqsim_cli"
  "vqsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
