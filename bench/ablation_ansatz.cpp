// Ablation: UCCSD vs hardware-efficient ansatz (paper §6.1 related work,
// Kandala et al.).
//
// Same H2 problem, same optimizer budget: the chemistry-aware UCCSD ansatz
// reaches FCI with 3 parameters; hardware-efficient layers need more
// parameters and still land higher — the design-choice trade the paper's
// related-work section discusses.

#include <cstdio>

#include "chem/fci.hpp"
#include "chem/jordan_wigner.hpp"
#include "chem/molecules.hpp"
#include "common/timer.hpp"
#include "vqe/vqe.hpp"

int main() {
  using namespace vqsim;

  const FermionOp h_fermion = molecular_hamiltonian(h2_sto3g());
  const PauliSum h = jordan_wigner(h_fermion);
  const double e_fci = fci_ground_state(h_fermion, 4, 2).energy;
  std::printf("# Ansatz ablation on H2/STO-3G, E_FCI = %.8f\n", e_fci);
  std::printf("%-18s %-8s %-8s %-12s %-10s %-8s\n", "ansatz", "params",
              "gates", "dE_vs_FCI", "evals", "wall_s");

  const auto report = [&](const char* name, const Ansatz& ansatz,
                          const VqeOptions& opts) {
    WallTimer timer;
    const VqeResult r = run_vqe(ansatz, h, opts);
    std::printf("%-18s %-8zu %-8zu %-12.2e %-10zu %-8.2f\n", name,
                ansatz.num_parameters(), ansatz.gate_count(),
                r.energy - e_fci, r.evaluations, timer.seconds());
  };

  VqeOptions nm;
  nm.nelder_mead.max_evaluations = 6000;
  report("uccsd", UccsdAnsatzAdapter(4, 2), nm);

  VqeOptions hea;
  hea.nelder_mead.max_evaluations = 6000;
  hea.nelder_mead.initial_step = 0.3;
  report("hw-efficient L=1", HardwareEfficientAnsatz(4, 1, 2), hea);
  report("hw-efficient L=2", HardwareEfficientAnsatz(4, 2, 2), hea);
  report("hw-efficient L=3", HardwareEfficientAnsatz(4, 3, 2), hea);
  return 0;
}
