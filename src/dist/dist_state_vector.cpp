#include "dist/dist_state_vector.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/bits.hpp"
#include "kernels/kernels.hpp"
#include "telemetry/telemetry.hpp"

namespace vqsim {

DistStateVector::DistStateVector(int num_qubits, SimComm* comm, CommMode mode)
    : num_qubits_(num_qubits), comm_(comm), mode_(mode) {
  if (comm == nullptr)
    throw std::invalid_argument("DistStateVector: null communicator");
  local_qubits_ = num_qubits - comm->rank_bits();
  if (local_qubits_ < 2)
    throw std::invalid_argument(
        "DistStateVector: need at least 2 local qubits per rank");
  local_.reserve(static_cast<std::size_t>(comm->num_ranks()));
  for (int r = 0; r < comm->num_ranks(); ++r)
    local_.emplace_back(local_qubits_);
  // StateVector initializes each shard to |0..0>; only rank 0 holds the
  // global |0...0> amplitude.
  for (int r = 1; r < comm->num_ranks(); ++r) {
    local_[static_cast<std::size_t>(r)].data()[0] = cplx{0.0, 0.0};
  }
  layout_.resize(static_cast<std::size_t>(num_qubits_));
  inv_layout_.resize(static_cast<std::size_t>(num_qubits_));
  reset_layout();
  // Staging capacity for the largest payload (a full shard slice): after
  // this, the per-gate exchange path never touches the allocator.
  const idx local_dim = pow2(static_cast<unsigned>(local_qubits_));
  stage_a_.reserve(static_cast<std::size_t>(local_dim));
  stage_b_.reserve(static_cast<std::size_t>(local_dim));
}

void DistStateVector::reset_layout() {
  std::iota(layout_.begin(), layout_.end(), 0);
  std::iota(inv_layout_.begin(), inv_layout_.end(), 0);
  greedy_cursor_ = 0;
}

bool DistStateVector::layout_is_identity() const {
  for (int q = 0; q < num_qubits_; ++q)
    if (layout_[static_cast<std::size_t>(q)] != q) return false;
  return true;
}

std::uint64_t DistStateVector::map_mask(std::uint64_t logical_mask) const {
  std::uint64_t phys = 0;
  while (logical_mask != 0) {
    const int b = std::countr_zero(logical_mask);
    logical_mask &= logical_mask - 1;
    if (b < num_qubits_)
      phys |= std::uint64_t{1} << layout_[static_cast<std::size_t>(b)];
  }
  return phys;
}

idx DistStateVector::to_logical_index(idx physical) const {
  idx logical = 0;
  for (int l = 0; l < num_qubits_; ++l)
    if (test_bit(physical,
                 static_cast<unsigned>(layout_[static_cast<std::size_t>(l)])))
      logical = set_bit(logical, static_cast<unsigned>(l));
  return logical;
}

std::vector<cplx>& DistStateVector::ensure_scratch(std::vector<cplx>& buf,
                                                   idx n) {
  if (buf.capacity() < static_cast<std::size_t>(n)) ++scratch_allocations_;
  buf.resize(static_cast<std::size_t>(n));
  return buf;
}

void DistStateVector::reset() { set_basis_state(0); }

void DistStateVector::set_basis_state(idx basis) {
  const idx local_dim = pow2(static_cast<unsigned>(local_qubits_));
  if (basis >= local_dim * static_cast<idx>(num_ranks()))
    throw std::out_of_range("DistStateVector::set_basis_state");
  reset_layout();
  const int owner = static_cast<int>(basis >> local_qubits_);
  for (int r = 0; r < num_ranks(); ++r) {
    StateVector& shard = local_[static_cast<std::size_t>(r)];
    shard.set_basis_state(0);
    if (r != owner) shard.data()[0] = cplx{0.0, 0.0};
  }
  local_[static_cast<std::size_t>(owner)].set_basis_state(basis &
                                                          (local_dim - 1));
  at_zero_state_ = (basis == 0);
}

void DistStateVector::adopt_layout(std::vector<int> layout) {
  if (mode_ != CommMode::kPersistentLayout)
    throw std::invalid_argument(
        "adopt_layout: requires CommMode::kPersistentLayout");
  if (!at_zero_state_)
    throw std::logic_error(
        "adopt_layout: only legal while the state is |0...0>");
  if (layout.size() != static_cast<std::size_t>(num_qubits_))
    throw std::invalid_argument("adopt_layout: layout size mismatch");
  std::vector<char> seen(static_cast<std::size_t>(num_qubits_), 0);
  for (int phys : layout) {
    if (phys < 0 || phys >= num_qubits_ || seen[static_cast<std::size_t>(phys)])
      throw std::invalid_argument("adopt_layout: not a permutation");
    seen[static_cast<std::size_t>(phys)] = 1;
  }
  // |0...0> is fixed by every qubit permutation, so relabeling the index
  // bits moves no amplitudes.
  layout_ = std::move(layout);
  for (int q = 0; q < num_qubits_; ++q)
    inv_layout_[static_cast<std::size_t>(layout_[static_cast<std::size_t>(q)])] =
        q;
  greedy_cursor_ = 0;
}

void DistStateVector::apply_circuit(const Circuit& circuit) {
  if (circuit.num_qubits() > num_qubits_)
    throw std::invalid_argument("apply_circuit: register too small");
  for (const Gate& g : circuit.gates()) apply_gate(g);
}

void DistStateVector::apply_circuit(const Circuit& circuit,
                                    const LayoutPlan& plan) {
  apply_circuit_range(circuit, plan, 0, circuit.size());

  VQSIM_COUNTER(c_planned, "comm.exchanges_planned");
  VQSIM_COUNTER_ADD(c_planned, plan.stats.planned_exchanges);
  VQSIM_COUNTER(c_avoided, "comm.exchanges_avoided");
  VQSIM_COUNTER_ADD(c_avoided,
                    plan.stats.naive_exchanges - plan.stats.planned_exchanges);
}

void DistStateVector::apply_circuit_range(const Circuit& circuit,
                                          const LayoutPlan& plan,
                                          std::size_t begin,
                                          std::size_t end) {
  if (mode_ != CommMode::kPersistentLayout)
    throw std::invalid_argument(
        "apply_circuit: comm plans require CommMode::kPersistentLayout");
  if (circuit.num_qubits() > num_qubits_)
    throw std::invalid_argument("apply_circuit: register too small");
  if (plan.num_qubits != num_qubits_ || plan.local_qubits != local_qubits_)
    throw std::invalid_argument(
        "apply_circuit: plan targets a different register partition");
  if (plan.steps.size() != circuit.size())
    throw std::invalid_argument("apply_circuit: plan/circuit length mismatch");
  if (begin > end || end > circuit.size())
    throw std::invalid_argument("apply_circuit_range: bad gate range");
  // The plan only records the starting layout; mid-circuit resumption
  // (begin > 0) trusts the restored snapshot to hold the matching layout —
  // apply_gate_persistent's per-step sync checks still catch divergence.
  if (begin == 0 &&
      (plan.initial_layout.empty() ? !layout_is_identity()
                                   : plan.initial_layout != layout_))
    throw std::logic_error(
        "apply_circuit: plan assumes a different starting layout");

  for (std::size_t i = begin; i < end; ++i)
    apply_gate_persistent(circuit[i], &plan.steps[i]);
}

DistSnapshot DistStateVector::snapshot(std::uint64_t gate_cursor) const {
  DistSnapshot snap;
  snap.num_qubits = num_qubits_;
  snap.local_qubits = local_qubits_;
  snap.gate_cursor = gate_cursor;
  snap.layout = layout_;
  snap.greedy_cursor = greedy_cursor_;
  snap.at_zero_state = at_zero_state_;
  snap.shards.reserve(local_.size());
  for (const StateVector& shard : local_)
    snap.shards.emplace_back(shard.data(), shard.data() + shard.dim());
  return snap;
}

void DistStateVector::restore(const DistSnapshot& snap) {
  if (snap.num_qubits != num_qubits_ || snap.local_qubits != local_qubits_ ||
      snap.shards.size() != local_.size())
    throw std::invalid_argument(
        "DistStateVector::restore: snapshot targets a different partition");
  if (snap.layout.size() != static_cast<std::size_t>(num_qubits_))
    throw std::invalid_argument(
        "DistStateVector::restore: layout size mismatch");
  const idx local_dim = pow2(static_cast<unsigned>(local_qubits_));
  for (const AmpVector& amps : snap.shards)
    if (amps.size() != static_cast<std::size_t>(local_dim))
      throw std::invalid_argument(
          "DistStateVector::restore: shard size mismatch");
  std::vector<char> seen(static_cast<std::size_t>(num_qubits_), 0);
  for (int phys : snap.layout) {
    if (phys < 0 || phys >= num_qubits_ ||
        seen[static_cast<std::size_t>(phys)])
      throw std::invalid_argument(
          "DistStateVector::restore: layout is not a permutation");
    seen[static_cast<std::size_t>(phys)] = 1;
  }
  for (std::size_t r = 0; r < local_.size(); ++r)
    std::copy(snap.shards[r].begin(), snap.shards[r].end(), local_[r].data());
  layout_ = snap.layout;
  for (int q = 0; q < num_qubits_; ++q)
    inv_layout_[static_cast<std::size_t>(
        layout_[static_cast<std::size_t>(q)])] = q;
  greedy_cursor_ = snap.greedy_cursor;
  at_zero_state_ = snap.at_zero_state;
}

void DistStateVector::apply_gate(const Gate& gate) {
  if (mode_ == CommMode::kNaivePerGate)
    apply_gate_naive(gate);
  else
    apply_gate_persistent(gate, nullptr);
}

// -- Physical-space primitives -----------------------------------------------

namespace {

// Eigenvalues of a diagonal gate, derived by running the gate through the
// shared-memory kernels on an all-ones probe. The rank-axis shortcut then
// scales by exactly the values StateVector::apply_gate would multiply —
// e.g. CZ's exp(i*pi), whose imaginary part is not exactly zero — keeping
// distributed execution bit-identical to the single-rank reference.
// Probe index bit 0 carries the gate's q0, bit 1 its q1.
std::array<cplx, 4> probe_diagonal(const Gate& gate) {
  const int nq = gate.is_two_qubit() ? 2 : 1;
  AmpVector amps(std::size_t{1} << nq, cplx{1.0, 0.0});
  StateVector probe = StateVector::from_amplitudes(std::move(amps));
  Gate g = gate;
  g.q0 = 0;
  if (g.is_two_qubit()) g.q1 = 1;
  probe.apply_gate(g);
  std::array<cplx, 4> d{cplx{1.0, 0.0}, cplx{1.0, 0.0}, cplx{1.0, 0.0},
                        cplx{1.0, 0.0}};
  for (int k = 0; k < (1 << nq); ++k)
    d[static_cast<std::size_t>(k)] = probe.data()[k];
  return d;
}

}  // namespace

void DistStateVector::apply_local_gate(const Gate& gate, int p0, int p1) {
  Gate g = gate;
  g.q0 = p0;
  if (g.is_two_qubit()) g.q1 = p1;
  for (StateVector& shard : local_) shard.apply_gate(g);
}

void DistStateVector::apply_mat2_global_phys(const Mat2& m, int gb) {
  // Partner ranks differ in this index bit. Rank pairs (a: bit=0, b: bit=1)
  // hold the (amp0, amp1) halves element-wise: exchange b's whole slice,
  // combine, each side recomputing from its staged copy.
  for (int a = 0; a < num_ranks(); ++a) {
    if ((a >> gb) & 1) continue;
    const int b = a | (1 << gb);
    StateVector& sa = local_[static_cast<std::size_t>(a)];
    StateVector& sb = local_[static_cast<std::size_t>(b)];
    const idx n = sa.dim();

    // Stage: each side sends its full slice to the other (reusable
    // per-instance buffers; exchange swaps the payloads in place, as a
    // sendrecv would).
    std::vector<cplx>& from_a = ensure_scratch(stage_a_, n);
    std::vector<cplx>& from_b = ensure_scratch(stage_b_, n);
    std::copy(sa.data(), sa.data() + n, from_a.begin());
    std::copy(sb.data(), sb.data() + n, from_b.begin());
    comm_->exchange(a, from_a, b, from_b);

    // Combine through the shared kernel table's halves entry: each side
    // recomputes from its own staged copy (the scratch half a kernel call
    // also writes is the exchange buffer, discarded afterwards), so the
    // lane arithmetic — and therefore every rounding — is the same the
    // shard-local dispatch uses for this matrix.
    const cplx mm[4] = {m(0, 0), m(0, 1), m(1, 0), m(1, 1)};
    const kernels::KernelTable& t = kernels::active_table();
    t.mat2_halves(sa.data(), from_a.data(), n, 1, mm);  // keeps half 0
    t.mat2_halves(from_b.data(), sb.data(), n, 1, mm);  // keeps half 1
  }
}

void DistStateVector::apply_dense1_global_phys(const Gate& gate, int gb) {
  // Same staging as apply_mat2_global_phys, but the combine goes through
  // kernels::apply_gate_halves: a dense fixed-matrix gate (H, X, ...) on a
  // rank-axis bit runs the same generated kernel a local qubit would, so
  // global and local placements of one gate stay bit-identical.
  for (int a = 0; a < num_ranks(); ++a) {
    if ((a >> gb) & 1) continue;
    const int b = a | (1 << gb);
    StateVector& sa = local_[static_cast<std::size_t>(a)];
    StateVector& sb = local_[static_cast<std::size_t>(b)];
    const idx n = sa.dim();
    std::vector<cplx>& from_a = ensure_scratch(stage_a_, n);
    std::vector<cplx>& from_b = ensure_scratch(stage_b_, n);
    std::copy(sa.data(), sa.data() + n, from_a.begin());
    std::copy(sb.data(), sb.data() + n, from_b.begin());
    comm_->exchange(a, from_a, b, from_b);
    kernels::apply_gate_halves(gate, sa.data(), from_a.data(), n);
    kernels::apply_gate_halves(gate, from_b.data(), sb.data(), n);
  }
}

void DistStateVector::swap_global_local_phys(int gb, int local_phys) {
  // SWAP(g, l) moves amplitudes between (rank g-bit, local l-bit) = (0, 1)
  // and (1, 0). Each rank in a partner pair ships the half-slice whose
  // l-bit disagrees with its g-bit.
  const unsigned lq = static_cast<unsigned>(local_phys);
  const idx lbit = pow2(lq);
  for (int a = 0; a < num_ranks(); ++a) {
    if ((a >> gb) & 1) continue;
    const int b = a | (1 << gb);
    StateVector& sa = local_[static_cast<std::size_t>(a)];
    StateVector& sb = local_[static_cast<std::size_t>(b)];
    const idx half = sa.dim() / 2;

    std::vector<cplx>& send_a = ensure_scratch(stage_a_, half);  // a's l=1
    std::vector<cplx>& send_b = ensure_scratch(stage_b_, half);  // b's l=0
    cplx* pa = sa.data();
    cplx* pb = sb.data();
    for (idx k = 0; k < half; ++k) {
      const idx base = insert_zero_bit(k, lq);
      send_a[k] = pa[base | lbit];
      send_b[k] = pb[base];
    }
    comm_->exchange(a, send_a, b, send_b);
    // send_a now holds b's l=0 half; send_b holds a's l=1 half.
    for (idx k = 0; k < half; ++k) {
      const idx base = insert_zero_bit(k, lq);
      pa[base | lbit] = send_a[k];
      pb[base] = send_b[k];
    }
  }
}

void DistStateVector::apply_diag1_phys(const Gate& gate, int phys) {
  // Diagonal on a rank-axis bit: each shard scales by the eigenvalue its
  // rank bit selects, through the table's whole-register scale kernel.
  // Zero communication.
  const std::array<cplx, 4> d = probe_diagonal(gate);
  const kernels::KernelTable& t = kernels::active_table();
  const int gb = global_bit(phys);
  for (int r = 0; r < num_ranks(); ++r) {
    const cplx e = ((r >> gb) & 1) ? d[1] : d[0];
    StateVector& shard = local_[static_cast<std::size_t>(r)];
    t.scale(shard.data(), shard.dim(), 1, &e);
  }
}

void DistStateVector::apply_diag2_phys(const Gate& gate, int p0, int p1) {
  // Two-qubit diagonal with at least one operand on the rank axis (the
  // caller guarantees that, so at most one operand is local): rank bits
  // select among the probe eigenvalues, and any local operand becomes a
  // two-value diagonal the table applies branch-free. Still zero comm.
  const std::array<cplx, 4> d = probe_diagonal(gate);
  const kernels::KernelTable& t = kernels::active_table();
  for (int r = 0; r < num_ranks(); ++r) {
    const int b0r =
        is_local_phys(p0) ? -1 : ((r >> global_bit(p0)) & 1);
    const int b1r =
        is_local_phys(p1) ? -1 : ((r >> global_bit(p1)) & 1);
    StateVector& shard = local_[static_cast<std::size_t>(r)];
    cplx* a = shard.data();
    const idx n = shard.dim();
    if (b0r >= 0 && b1r >= 0) {
      const cplx e = d[(b1r << 1) | b0r];
      t.scale(a, n, 1, &e);
    } else if (b0r < 0) {
      // q0 local: its index bit picks within the rank-fixed b1 row.
      const cplx e[2] = {d[b1r << 1], d[(b1r << 1) | 1]};
      t.diag_z(a, n, 1, pow2(static_cast<unsigned>(p0)), e);
    } else {
      const cplx e[2] = {d[b0r], d[2 | b0r]};
      t.diag_z(a, n, 1, pow2(static_cast<unsigned>(p1)), e);
    }
  }
}

void DistStateVector::move_to_local(int logical_q, int slot) {
  const int gp = layout_[static_cast<std::size_t>(logical_q)];
  swap_global_local_phys(global_bit(gp), slot);
  const int evicted = inv_layout_[static_cast<std::size_t>(slot)];
  layout_[static_cast<std::size_t>(logical_q)] = slot;
  inv_layout_[static_cast<std::size_t>(slot)] = logical_q;
  layout_[static_cast<std::size_t>(evicted)] = gp;
  inv_layout_[static_cast<std::size_t>(gp)] = evicted;
  VQSIM_COUNTER(c_swaps, "dist.layout_swaps");
  VQSIM_COUNTER_INC(c_swaps);
}

int DistStateVector::pick_scratch(int avoid0, int avoid1) const {
  for (int q = 0; q < local_qubits_; ++q)
    if (q != avoid0 && q != avoid1) return q;
  throw std::runtime_error("DistStateVector: no scratch qubit available");
}

int DistStateVector::pick_victim_greedy(int exclude0, int exclude1) {
  // Round-robin over the local slots so repeated lowerings spread their
  // evictions instead of thrashing slot 0.
  for (int step = 0; step < local_qubits_; ++step) {
    const int p = (greedy_cursor_ + step) % local_qubits_;
    if (p == exclude0 || p == exclude1) continue;
    greedy_cursor_ = (p + 1) % local_qubits_;
    return p;
  }
  throw std::runtime_error("DistStateVector: no scratch qubit available");
}

// -- Gate lowering -----------------------------------------------------------

void DistStateVector::apply_gate_naive(const Gate& gate) {
  at_zero_state_ = false;
  // The seed lowering, kept as the comm-volume baseline: every global
  // two-qubit operand pays swap-in/gate/swap-out, every global single-qubit
  // gate pays a full-slice exchange, diagonals get no shortcut.
  if (!gate.is_two_qubit()) {
    if (gate.kind == GateKind::kI) return;
    if (is_local_phys(gate.q0)) {
      apply_local_gate(gate, gate.q0);
    } else if (gate_is_diagonal(gate)) {
      // The baseline still pays the full-slice exchange (no shortcut), but
      // the combine uses the probe-derived eigenvalues rather than the
      // textbook matrix: StateVector's phase kernels multiply by exp(i*phi),
      // whose off-axis component is not bitwise the matrix entry, and the
      // baseline must stay bit-identical to the single-rank reference.
      const std::array<cplx, 4> d = probe_diagonal(gate);
      Mat2 m = Mat2::zero();
      m(0, 0) = d[0];
      m(1, 1) = d[1];
      apply_mat2_global_phys(m, global_bit(gate.q0));
    } else {
      apply_dense1_global_phys(gate, global_bit(gate.q0));
    }
    return;
  }

  int q0 = gate.q0;
  int q1 = gate.q1;
  // Lower global operands onto local scratch qubits via distributed swaps.
  std::vector<std::pair<int, int>> swaps;  // (global bit, scratch) to undo
  if (!is_local_phys(q0)) {
    const int s = pick_scratch(q1 < local_qubits_ ? q1 : -1, -1);
    swap_global_local_phys(global_bit(q0), s);
    swaps.emplace_back(global_bit(q0), s);
    q0 = s;
  }
  if (!is_local_phys(q1)) {
    const int s = pick_scratch(q0, swaps.empty() ? -1 : swaps.back().second);
    swap_global_local_phys(global_bit(q1), s);
    swaps.emplace_back(global_bit(q1), s);
    q1 = s;
  }

  apply_local_gate(gate, q0, q1);

  for (auto it = swaps.rbegin(); it != swaps.rend(); ++it)
    swap_global_local_phys(it->first, it->second);
}

void DistStateVector::apply_gate_persistent(const Gate& gate,
                                            const LayoutStep* step) {
  at_zero_state_ = false;
  if (!gate.is_two_qubit()) {
    if (gate.kind == GateKind::kI) return;
    const int p0 = layout_[static_cast<std::size_t>(gate.q0)];
    if (is_local_phys(p0)) {
      if (step != nullptr && step->action[0] >= 0)
        throw std::logic_error("DistStateVector: layout plan out of sync");
      apply_local_gate(gate, p0);
      return;
    }
    if (gate_is_diagonal(gate)) {
      apply_diag1_phys(gate, p0);
      return;
    }
    if (step != nullptr) {
      const int slot = step->action[0];
      if (slot < 0)
        throw std::logic_error("DistStateVector: layout plan out of sync");
      move_to_local(gate.q0, slot);
      apply_local_gate(gate, slot);
    } else {
      // Greedy path: a lone global 1q gate runs in place (seed cost); the
      // planner is the one with the lookahead to justify a swap-in.
      apply_dense1_global_phys(gate, global_bit(p0));
    }
    return;
  }

  const int p0 = layout_[static_cast<std::size_t>(gate.q0)];
  const int p1 = layout_[static_cast<std::size_t>(gate.q1)];
  if (gate_is_diagonal(gate) &&
      (!is_local_phys(p0) || !is_local_phys(p1))) {
    apply_diag2_phys(gate, p0, p1);
    return;
  }

  int q0p = p0;
  int q1p = p1;
  if (!is_local_phys(q0p)) {
    const int slot =
        step != nullptr
            ? step->action[0]
            : pick_victim_greedy(is_local_phys(q1p) ? q1p : -1, -1);
    if (slot < 0)
      throw std::logic_error("DistStateVector: layout plan out of sync");
    move_to_local(gate.q0, slot);
    q0p = slot;
  } else if (step != nullptr && step->action[0] >= 0) {
    throw std::logic_error("DistStateVector: layout plan out of sync");
  }
  if (!is_local_phys(q1p)) {
    const int slot = step != nullptr ? step->action[1]
                                     : pick_victim_greedy(q0p, -1);
    if (slot < 0 || slot == q0p)
      throw std::logic_error("DistStateVector: layout plan out of sync");
    move_to_local(gate.q1, slot);
    q1p = slot;
  } else if (step != nullptr && step->action[1] >= 0) {
    throw std::logic_error("DistStateVector: layout plan out of sync");
  }

  apply_local_gate(gate, q0p, q1p);
}

// -- Read-side operations (all remapped through the layout) ------------------

double DistStateVector::expectation_z_mask(std::uint64_t mask) {
  const idx local_dim = pow2(static_cast<unsigned>(local_qubits_));
  const std::uint64_t pmask = map_mask(mask);
  const std::uint64_t local_mask = pmask & (local_dim - 1);
  // Loop-invariant rank-axis bits of the mask, hoisted out of the per-rank
  // loop.
  const std::uint64_t rank_bits =
      (pmask >> local_qubits_) & static_cast<std::uint64_t>(num_ranks() - 1);
  std::vector<double> partial(static_cast<std::size_t>(num_ranks()));
  for (int r = 0; r < num_ranks(); ++r) {
    const double rank_sign =
        parity(static_cast<idx>(r) & rank_bits) ? -1.0 : 1.0;
    const cplx* a = local_[static_cast<std::size_t>(r)].data();
    double s = 0.0;
    for (idx i = 0; i < local_dim; ++i) {
      const double p = std::norm(a[i]);
      s += parity(i & local_mask) ? -p : p;
    }
    partial[static_cast<std::size_t>(r)] = rank_sign * s;
  }
  return comm_->allreduce_sum(partial);
}

cplx DistStateVector::expectation_pauli(const PauliString& p) {
  if (p.min_qubits() > num_qubits_)
    throw std::out_of_range("expectation_pauli: string exceeds register");
  const idx local_dim = pow2(static_cast<unsigned>(local_qubits_));
  const std::uint64_t xm = map_mask(p.x);
  const std::uint64_t zm = map_mask(p.z);
  const std::uint64_t x_local = xm & (local_dim - 1);
  const std::uint64_t x_rank = xm >> local_qubits_;

  static const cplx kIPow[4] = {cplx{1, 0}, cplx{0, 1}, cplx{-1, 0},
                                cplx{0, -1}};
  const cplx global = kIPow[std::popcount(xm & zm) % 4];

  // Phase 1: when the X mask crosses the rank axis, each unordered partner
  // pair posts exactly one sendrecv-style exchange serving both endpoints.
  // Every remote amplitude moves through SimComm::exchange — no direct
  // reads of the partner shard — so CommStats::amplitudes_exchanged is
  // exact and independent of which side of the pair is visited first.
  if (x_rank != 0) {
    if (pauli_inbox_.size() != static_cast<std::size_t>(num_ranks()))
      pauli_inbox_.resize(static_cast<std::size_t>(num_ranks()));
    pauli_inbox_filled_.assign(static_cast<std::size_t>(num_ranks()), 0);
    for (int step = 0; step < num_ranks(); ++step) {
      const int r = reverse_pair_iteration_ ? num_ranks() - 1 - step : step;
      if (pauli_inbox_filled_[static_cast<std::size_t>(r)]) continue;
      const int partner = r ^ static_cast<int>(x_rank);
      std::vector<cplx>& mine =
          ensure_scratch(pauli_inbox_[static_cast<std::size_t>(r)], local_dim);
      std::vector<cplx>& theirs = ensure_scratch(
          pauli_inbox_[static_cast<std::size_t>(partner)], local_dim);
      const cplx* ar = local_[static_cast<std::size_t>(r)].data();
      const cplx* ap = local_[static_cast<std::size_t>(partner)].data();
      std::copy(ar, ar + local_dim, mine.begin());
      std::copy(ap, ap + local_dim, theirs.begin());
      // Fault site "comm.inbox": the expectation-side slice delivery, at
      // pair granularity — lets a chaos schedule kill a rank while its
      // inbox payload is in flight, distinctly from circuit exchanges.
      comm_->fault_point("comm.inbox", "pauli-inbox", r, partner,
                         2 * static_cast<std::uint64_t>(local_dim) *
                             sizeof(cplx));
      comm_->exchange(r, mine, partner, theirs);
      // After the swap each inbox holds the slice its rank received.
      pauli_inbox_filled_[static_cast<std::size_t>(r)] = 1;
      pauli_inbox_filled_[static_cast<std::size_t>(partner)] = 1;
    }
  }

  // Phase 2: per-rank accumulation against the received slice (or the own
  // shard when the X mask stays below the rank axis).
  std::vector<cplx> partial(static_cast<std::size_t>(num_ranks()),
                            cplx{0.0, 0.0});
  for (int r = 0; r < num_ranks(); ++r) {
    const cplx* a = local_[static_cast<std::size_t>(r)].data();
    const cplx* remote =
        x_rank == 0 ? a : pauli_inbox_[static_cast<std::size_t>(r)].data();
    cplx s{0.0, 0.0};
    for (idx l = 0; l < local_dim; ++l) {
      const idx i = (static_cast<idx>(r) << local_qubits_) | l;
      const cplx phase = global * (parity(i & zm) ? -1.0 : 1.0);
      s += std::conj(remote[l ^ x_local]) * phase * a[l];
    }
    partial[static_cast<std::size_t>(r)] = s;
  }
  return comm_->allreduce_sum(partial);
}

double DistStateVector::expectation(const PauliSum& h) {
  double e = 0.0;
  for (const PauliTerm& t : h.terms())
    e += (t.coefficient * expectation_pauli(t.string)).real();
  return e;
}

double DistStateVector::norm() {
  std::vector<double> partial(static_cast<std::size_t>(num_ranks()));
  for (int r = 0; r < num_ranks(); ++r) {
    const cplx* a = local_[static_cast<std::size_t>(r)].data();
    double s = 0.0;
    for (idx i = 0; i < local_[static_cast<std::size_t>(r)].dim(); ++i)
      s += std::norm(a[i]);
    partial[static_cast<std::size_t>(r)] = s;
  }
  return std::sqrt(comm_->allreduce_sum(partial));
}

std::vector<idx> DistStateVector::sample(Rng& rng, std::size_t shots) {
  const idx local_dim = pow2(static_cast<unsigned>(local_qubits_));
  // Rank probability masses, shared through one allreduce (the collective a
  // real deployment needs before routing shots to owners).
  std::vector<double> weight(static_cast<std::size_t>(num_ranks()));
  for (int r = 0; r < num_ranks(); ++r) {
    const cplx* a = local_[static_cast<std::size_t>(r)].data();
    double s = 0.0;
    for (idx i = 0; i < local_dim; ++i) s += std::norm(a[i]);
    weight[static_cast<std::size_t>(r)] = s;
  }
  const double total = comm_->allreduce_sum(weight);

  std::vector<idx> out;
  out.reserve(shots);
  for (std::size_t shot = 0; shot < shots; ++shot) {
    double u = rng.uniform() * total;
    int r = num_ranks() - 1;
    for (int cand = 0; cand < num_ranks(); ++cand) {
      if (u < weight[static_cast<std::size_t>(cand)]) {
        r = cand;
        break;
      }
      u -= weight[static_cast<std::size_t>(cand)];
    }
    const cplx* a = local_[static_cast<std::size_t>(r)].data();
    idx pick = local_dim - 1;
    for (idx i = 0; i < local_dim; ++i) {
      const double pi = std::norm(a[i]);
      if (u < pi) {
        pick = i;
        break;
      }
      u -= pi;
    }
    out.push_back(
        to_logical_index((static_cast<idx>(r) << local_qubits_) | pick));
  }
  return out;
}

StateVector DistStateVector::gather() const {
  AmpVector amps(pow2(static_cast<unsigned>(num_qubits_)));
  const idx local_dim = pow2(static_cast<unsigned>(local_qubits_));
  const bool identity = layout_is_identity();
  for (int r = 0; r < num_ranks(); ++r) {
    const cplx* a = local_[static_cast<std::size_t>(r)].data();
    for (idx i = 0; i < local_dim; ++i) {
      const idx phys = (static_cast<idx>(r) << local_qubits_) | i;
      amps[identity ? phys : to_logical_index(phys)] = a[i];
    }
  }
  return StateVector::from_amplitudes(std::move(amps));
}

}  // namespace vqsim
