// Total-spin operators over interleaved spin orbitals.
//
// Symmetry diagnostics for the chemistry stack: S_z and S^2 as fermion
// operators (and, via the encodings, as qubit observables). Closed-shell
// references are singlets; UCCSD conserves S_z by construction — both are
// enforced as tests.
#pragma once

#include "chem/fermion.hpp"

namespace vqsim {

/// S_z = 1/2 sum_p (n_{p,alpha} - n_{p,beta}).
FermionOp sz_operator(int norb);

/// S_+ = sum_p a^dag_{p,alpha} a_{p,beta}; S_- is its adjoint.
FermionOp s_plus_operator(int norb);

/// S^2 = S_- S_+ + S_z (S_z + 1).
FermionOp s_squared_operator(int norb);

}  // namespace vqsim
