file(REMOVE_RECURSE
  "libvqsim_pauli.a"
)
