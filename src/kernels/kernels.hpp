// Shared gate-kernel dispatch layer (ROADMAP item 2).
//
// Every backend — StateVector, DensityMatrix (through its vectorized state),
// DistStateVector's shard-local and dense-exchange paths, and the batched
// SoA executor — applies amplitudes through one KernelTable of strided
// kernels, so a kernel improvement lands in all of them at once (the
// single-dispatch-layer assumption of the multi-GPU middleware paper,
// PAPERS.md 2403.05828).
//
// Layout convention: an array of `dim` amplitude groups of K contiguous
// items each — group i, item k lives at a[i * K + k]. K == 1 is the plain
// state-vector layout; K > 1 is BatchedStateVector's structure-of-arrays
// layout, so vectorizing across the lane index covers the group axis and
// the batch axis with the same code. Per-item payloads (matrices, phases)
// are slot-major: slot s of item k at m[s * K + k]; for K == 1 that is the
// flattened row-major matrix itself.
//
// Two implementations of the table are compiled: a scalar fallback
// (always), and an AVX2 translation unit when the VQSIM_SIMD cmake probe
// passes (VQSIM_SIMD_AVX2). Both run the same per-amplitude expressions in
// the same order — the AVX2 intrinsics use only mul/add/sub/addsub (never
// fused multiply-add), and the TU keeps the FMA ISA entirely disabled so
// the compiler cannot contract the generic loops either — so the two
// tables are bit-identical and the ctest suite cannot tell them apart.
//
// On top of the generic kernels, tools/gen_kernels emits branch-free
// constant-folded specializations for the fixed-matrix gates (H, X, Y, Z,
// S, Sdg, T, Tdg, SX, SXdg, CX, CY, CZ, CH, Swap) into
// kernels_generated.inc; the per-kind `fixed1`/`fixed2` slots hold them.
//
// Every kernel returns the number of amplitude slots it actually updated,
// which is exactly what callers add to "sim.amps_touched_total" — the
// counting bugs this layer replaced (apply_phase billing the full register,
// CZ/CP billing nothing) are structurally impossible here.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/types.hpp"
#include "ir/gate.hpp"

namespace vqsim::kernels {

inline constexpr std::size_t kNumGateKinds =
    static_cast<std::size_t>(GateKind::kMat2) + 1;

/// Generic strided kernels. `dim` counts amplitude groups (a power of two),
/// `K` items per group; payload pointers are slot-major K-strided.
struct KernelTable {
  const char* backend;  // "scalar" or "avx2"

  /// 1q matrix m (4 slots) on qubit q.
  idx (*mat2)(cplx* a, idx dim, std::size_t K, unsigned q, const cplx* m);
  /// Controlled 1q block m (4 slots), control qc, target qt.
  idx (*cmat2)(cplx* a, idx dim, std::size_t K, unsigned qc, unsigned qt,
               const cplx* m);
  /// 2q matrix m (16 slots, row-major, q0 = low index bit).
  idx (*mat4)(cplx* a, idx dim, std::size_t K, unsigned q0, unsigned q1,
              const cplx* m);
  /// Multiply the amplitudes with ALL `mask` bits set by e (1 slot):
  /// diag(1, e) for one bit, the |11> phase for two bits.
  idx (*diag_mask)(cplx* a, idx dim, std::size_t K, std::uint64_t mask,
                   const cplx* e);
  /// Controlled diagonal diag(e0, e1) on the control-set half (2 slots);
  /// the CRZ fast path.
  idx (*cdiag2)(cplx* a, idx dim, std::size_t K, unsigned qc, unsigned qt,
                const cplx* e);
  /// Diagonal Pauli-Z phase: amplitude i picks up e[parity(i & zm)]
  /// (2 slots: em then ep). Touches every amplitude.
  idx (*diag_z)(cplx* a, idx dim, std::size_t K, std::uint64_t zm,
                const cplx* e);
  /// Multiply every amplitude by e (1 slot).
  idx (*scale)(cplx* a, idx dim, std::size_t K, const cplx* e);
  /// Pauli-string application with phase `global` (1 slot).
  idx (*pauli)(cplx* a, idx dim, std::size_t K, std::uint64_t xm,
               std::uint64_t zm, const cplx* global);
  /// General (xm != 0) exp(-i theta P): cos slot c, -i sin slot mis,
  /// string phase slot global.
  idx (*exp_pauli)(cplx* a, idx dim, std::size_t K, std::uint64_t xm,
                   std::uint64_t zm, const double* c, const cplx* mis,
                   const cplx* global);
  /// 1q matrix applied across two contiguous half-arrays of n groups each
  /// (the distributed dense-exchange layout: h0/h1 hold target bit = 0/1).
  idx (*mat2_halves)(cplx* h0, cplx* h1, idx n, std::size_t K,
                     const cplx* m);

  /// Generated constant-folded kernels, indexed by GateKind (null where no
  /// specialization exists).
  std::array<idx (*)(cplx* a, idx dim, std::size_t K, unsigned q),
             kNumGateKinds>
      fixed1{};
  std::array<idx (*)(cplx* a, idx dim, std::size_t K, unsigned q0,
                     unsigned q1),
             kNumGateKinds>
      fixed2{};
  /// Halves variants of the dense generated 1q kernels (dist exchange).
  std::array<idx (*)(cplx* h0, cplx* h1, idx n, std::size_t K),
             kNumGateKinds>
      fixed1_halves{};
};

/// The always-compiled scalar table.
const KernelTable& scalar_table();

#if defined(VQSIM_SIMD_AVX2)
/// The AVX2 table (only when the cmake probe passed).
const KernelTable& avx2_table();
#endif

/// The table every backend dispatches through: the AVX2 table when it was
/// compiled in AND the running CPU supports AVX2, else the scalar one.
const KernelTable& active_table();

/// True when active_table() is the SIMD table.
bool simd_enabled();

/// active_table().backend.
const char* backend_name();

/// Dense-exchange entry for the distributed backend: apply gate g's
/// single-qubit action across the halves layout with exactly the lane
/// arithmetic the shard-local dispatch uses (the generated kernel when one
/// exists, the generic mat2 lanes otherwise), keeping the exchanged global
/// qubit bit-identical to a local one.
idx apply_gate_halves(const Gate& g, cplx* h0, cplx* h1, idx n);

}  // namespace vqsim::kernels
