// Active-space selection and frozen-core folding.
//
// The downfolding workflow (paper §2) confines the problem to an active
// window of spatial orbitals around the Fermi level. Frozen (core) orbitals
// are folded into the scalar energy and an effective one-body term; external
// virtuals are either discarded (bare truncation baseline) or integrated out
// by the Hermitian downfolding in downfold.hpp.
#pragma once

#include "chem/integrals.hpp"

namespace vqsim {

struct ActiveSpace {
  int n_frozen = 0;  // lowest spatial orbitals, kept doubly occupied
  int n_active = 0;  // window size (spatial orbitals)

  int first() const { return n_frozen; }
  int last() const { return n_frozen + n_active; }  // exclusive

  bool is_active_spatial(int p) const { return p >= first() && p < last(); }
  bool is_active_spin(int so) const { return is_active_spatial(so / 2); }
};

/// Bare active-space truncation: folds the frozen core into e_core / h1 and
/// keeps only the active block of the integrals. Electron count becomes
/// nelec - 2 * n_frozen. This is the paper's "bare Hamiltonian
/// diagonalization" baseline that downfolding improves on.
MolecularIntegrals project_active(const MolecularIntegrals& full,
                                  const ActiveSpace& space);

}  // namespace vqsim
