// Seed-faithful reference kernels: the gate-application expressions the
// repo shipped with BEFORE the shared kernel table existed, transcribed
// verbatim from the original StateVector kernels (std::complex operators,
// per-index mask tests, full-register enumeration). They exist for two
// consumers:
//
//  * tests/test_kernels.cpp uses reference::apply_gate as the bit-identity
//    oracle — every production path (scalar table, SIMD table, generated
//    constant kernels, batched K > 1) must reproduce these amplitudes
//    under operator== exactly;
//  * bench/perf_gate_kernels.cpp uses them as the speedup baseline the
//    >= 2x kernel-table gate is measured against.
//
// Everything is serial and header-only on purpose: no parallel_for, no
// telemetry, no dispatch — just the arithmetic. Do not "fix" the
// inefficiencies here (full-register phase scans, per-application 4x4
// rebuilds); they ARE the reference.
#pragma once

#include <bit>
#include <cmath>
#include <stdexcept>

#include "common/bits.hpp"
#include "common/types.hpp"
#include "ir/gate.hpp"

namespace vqsim::kernels::reference {

inline void apply_mat2(cplx* a, idx dim, const Mat2& m, int q) {
  const unsigned uq = static_cast<unsigned>(q);
  const idx stride = pow2(uq);
  const cplx m00 = m(0, 0), m01 = m(0, 1), m10 = m(1, 0), m11 = m(1, 1);
  for (idx k = 0; k < dim / 2; ++k) {
    const idx i0 = insert_zero_bit(k, uq);
    const idx i1 = i0 | stride;
    const cplx a0 = a[i0];
    const cplx a1 = a[i1];
    a[i0] = m00 * a0 + m01 * a1;
    a[i1] = m10 * a0 + m11 * a1;
  }
}

inline void apply_mat4(cplx* a, idx dim, const Mat4& m, int q0, int q1) {
  const unsigned u0 = static_cast<unsigned>(q0);
  const unsigned u1 = static_cast<unsigned>(q1);
  const idx s0 = pow2(u0);
  const idx s1 = pow2(u1);
  for (idx k = 0; k < dim / 4; ++k) {
    const idx base = insert_two_zero_bits(k, u0, u1);
    const idx i00 = base;
    const idx i01 = base | s0;
    const idx i10 = base | s1;
    const idx i11 = base | s0 | s1;
    const cplx a0 = a[i00];
    const cplx a1 = a[i01];
    const cplx a2 = a[i10];
    const cplx a3 = a[i11];
    a[i00] = m(0, 0) * a0 + m(0, 1) * a1 + m(0, 2) * a2 + m(0, 3) * a3;
    a[i01] = m(1, 0) * a0 + m(1, 1) * a1 + m(1, 2) * a2 + m(1, 3) * a3;
    a[i10] = m(2, 0) * a0 + m(2, 1) * a1 + m(2, 2) * a2 + m(2, 3) * a3;
    a[i11] = m(3, 0) * a0 + m(3, 1) * a1 + m(3, 2) * a2 + m(3, 3) * a3;
  }
}

inline void apply_controlled_mat2(cplx* a, idx dim, const Mat2& m,
                                  int control, int target) {
  const unsigned uc = static_cast<unsigned>(control);
  const unsigned ut = static_cast<unsigned>(target);
  const idx cbit = pow2(uc);
  const idx tbit = pow2(ut);
  const cplx m00 = m(0, 0), m01 = m(0, 1), m10 = m(1, 0), m11 = m(1, 1);
  for (idx k = 0; k < dim / 4; ++k) {
    const idx base = insert_two_zero_bits(k, uc, ut) | cbit;
    const idx i0 = base;
    const idx i1 = base | tbit;
    const cplx a0 = a[i0];
    const cplx a1 = a[i1];
    a[i0] = m00 * a0 + m01 * a1;
    a[i1] = m10 * a0 + m11 * a1;
  }
}

inline void apply_phase(cplx* a, idx dim, double phi, int q) {
  const unsigned uq = static_cast<unsigned>(q);
  const cplx e = std::exp(kI * phi);
  for (idx i = 0; i < dim; ++i)
    if (test_bit(i, uq)) a[i] *= e;
}

inline constexpr cplx kIPow[4] = {cplx{1, 0}, cplx{0, 1}, cplx{-1, 0},
                                  cplx{0, -1}};

inline void apply_pauli(cplx* a, idx dim, std::uint64_t xm,
                        std::uint64_t zm) {
  const cplx global = kIPow[std::popcount(xm & zm) % 4];
  if (xm == 0) {
    for (idx i = 0; i < dim; ++i) {
      const double sign = parity(i & zm) ? -1.0 : 1.0;
      a[i] *= global * sign;
    }
    return;
  }
  const unsigned pivot = static_cast<unsigned>(std::countr_zero(xm));
  for (idx k = 0; k < dim / 2; ++k) {
    const idx i = insert_zero_bit(k, pivot);
    const idx j = i ^ xm;
    const cplx pi = global * (parity(i & zm) ? -1.0 : 1.0);
    const cplx pj = global * (parity(j & zm) ? -1.0 : 1.0);
    const cplx ai = a[i];
    const cplx aj = a[j];
    a[j] = pi * ai;
    a[i] = pj * aj;
  }
}

inline void apply_exp_pauli(cplx* a, idx dim, std::uint64_t xm,
                            std::uint64_t zm, double theta) {
  const double c = std::cos(theta);
  const double s = std::sin(theta);
  if (xm == 0 && zm == 0) {
    const cplx e = std::exp(-kI * theta);
    for (idx i = 0; i < dim; ++i) a[i] *= e;
    return;
  }
  const cplx global = kIPow[std::popcount(xm & zm) % 4];
  if (xm == 0) {
    const cplx em = cplx{c, -s};
    const cplx ep = cplx{c, s};
    for (idx i = 0; i < dim; ++i) a[i] *= parity(i & zm) ? ep : em;
    return;
  }
  const unsigned pivot = static_cast<unsigned>(std::countr_zero(xm));
  const cplx mis{0.0, -s};
  for (idx k = 0; k < dim / 2; ++k) {
    const idx i = insert_zero_bit(k, pivot);
    const idx j = i ^ xm;
    const cplx pi = global * (parity(i & zm) ? -1.0 : 1.0);
    const cplx pj = global * (parity(j & zm) ? -1.0 : 1.0);
    const cplx ai = a[i];
    const cplx aj = a[j];
    a[i] = c * ai + mis * pj * aj;
    a[j] = c * aj + mis * pi * ai;
  }
}

/// The seed StateVector::apply_gate dispatch, case for case: the same
/// fast-path selections, the same precomputed values, the same per-kind
/// kernel — including the seed's habit of rebuilding the controlled 4x4
/// just to read four entries out of it.
inline void apply_gate(cplx* a, idx dim, const Gate& g) {
  const auto bit = [](int q) { return pow2(static_cast<unsigned>(q)); };
  switch (g.kind) {
    case GateKind::kI:
      return;
    case GateKind::kX:
      return apply_pauli(a, dim, bit(g.q0), 0);
    case GateKind::kY:
      return apply_pauli(a, dim, bit(g.q0), bit(g.q0));
    case GateKind::kZ:
      return apply_pauli(a, dim, 0, bit(g.q0));
    case GateKind::kS:
      return apply_phase(a, dim, kPi / 2, g.q0);
    case GateKind::kSdg:
      return apply_phase(a, dim, -kPi / 2, g.q0);
    case GateKind::kT:
      return apply_phase(a, dim, kPi / 4, g.q0);
    case GateKind::kTdg:
      return apply_phase(a, dim, -kPi / 4, g.q0);
    case GateKind::kP:
      return apply_phase(a, dim, g.params[0], g.q0);
    case GateKind::kRZ:
      return apply_exp_pauli(a, dim, 0, bit(g.q0), g.params[0] / 2);
    case GateKind::kH:
    case GateKind::kSX:
    case GateKind::kSXdg:
    case GateKind::kRX:
    case GateKind::kRY:
    case GateKind::kU3:
    case GateKind::kMat1:
      return apply_mat2(a, dim, gate_matrix2(g), g.q0);
    case GateKind::kCX:
    case GateKind::kCY:
    case GateKind::kCH:
    case GateKind::kCRX:
    case GateKind::kCRY:
    case GateKind::kCRZ: {
      const Mat4 m4 = gate_matrix4(g);
      Mat2 u;
      u(0, 0) = m4(1, 1);
      u(0, 1) = m4(1, 3);
      u(1, 0) = m4(3, 1);
      u(1, 1) = m4(3, 3);
      return apply_controlled_mat2(a, dim, u, g.q0, g.q1);
    }
    case GateKind::kCZ:
    case GateKind::kCP: {
      const double phi = g.kind == GateKind::kCZ ? kPi : g.params[0];
      const cplx e = std::exp(kI * phi);
      const idx mask = bit(g.q0) | bit(g.q1);
      for (idx i = 0; i < dim; ++i)
        if ((i & mask) == mask) a[i] *= e;
      return;
    }
    case GateKind::kRZZ:
      return apply_exp_pauli(a, dim, 0, bit(g.q0) | bit(g.q1),
                             g.params[0] / 2);
    case GateKind::kSwap:
    case GateKind::kRXX:
    case GateKind::kRYY:
    case GateKind::kMat2:
      return apply_mat4(a, dim, gate_matrix4(g), g.q0, g.q1);
  }
  throw std::invalid_argument("reference::apply_gate: unhandled gate kind");
}

}  // namespace vqsim::kernels::reference
