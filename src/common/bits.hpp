// Bit-manipulation helpers for amplitude indexing.
//
// A state vector over n qubits is indexed by an n-bit integer whose bit q is
// the computational-basis value of qubit q (qubit 0 is the least significant
// bit). Gate kernels enumerate the 2^(n-k) index groups obtained by deleting
// the k target-qubit bits and re-inserting every combination; these helpers
// implement that insertion.
#pragma once

#include <bit>
#include <cassert>

#include "common/types.hpp"

namespace vqsim {

/// Insert a zero bit at position `pos`, shifting bits at and above `pos` up.
/// Example: insert_zero_bit(0b101, 1) == 0b1001.
constexpr idx insert_zero_bit(idx v, unsigned pos) noexcept {
  const idx low = v & ((idx{1} << pos) - 1);
  const idx high = (v >> pos) << (pos + 1);
  return high | low;
}

/// Insert zero bits at two distinct positions (positions refer to the final
/// bit layout). Order of arguments does not matter.
constexpr idx insert_two_zero_bits(idx v, unsigned p0, unsigned p1) noexcept {
  const unsigned lo = p0 < p1 ? p0 : p1;
  const unsigned hi = p0 < p1 ? p1 : p0;
  return insert_zero_bit(insert_zero_bit(v, lo), hi);
}

/// Test bit `pos`.
constexpr bool test_bit(idx v, unsigned pos) noexcept {
  return (v >> pos) & idx{1};
}

/// Set bit `pos` to 1.
constexpr idx set_bit(idx v, unsigned pos) noexcept {
  return v | (idx{1} << pos);
}

/// Parity (0/1) of the number of set bits.
constexpr int parity(idx v) noexcept { return std::popcount(v) & 1; }

/// 2^n as an idx; n must be < 64.
constexpr idx pow2(unsigned n) noexcept {
  assert(n < 64);
  return idx{1} << n;
}

}  // namespace vqsim
