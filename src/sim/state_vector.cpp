#include "sim/state_vector.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>
#include <string>

#include "common/bits.hpp"
#include "common/invariants.hpp"
#include "common/parallel.hpp"
#include "telemetry/telemetry.hpp"

namespace vqsim {

StateVector::StateVector(int num_qubits) : num_qubits_(num_qubits) {
  if (num_qubits < 0 || num_qubits > 40)
    throw std::invalid_argument("StateVector: unsupported qubit count");
  amp_.assign(pow2(static_cast<unsigned>(num_qubits)), cplx{0.0, 0.0});
  amp_[0] = 1.0;
}

StateVector StateVector::from_amplitudes(AmpVector amplitudes) {
  if (amplitudes.empty() || !std::has_single_bit(amplitudes.size()))
    throw std::invalid_argument(
        "StateVector::from_amplitudes: size must be a power of two");
  StateVector sv(std::bit_width(amplitudes.size()) - 1);
  sv.amp_ = std::move(amplitudes);
  return sv;
}

void StateVector::reset() { set_basis_state(0); }

void StateVector::set_basis_state(idx basis) {
  if (basis >= amp_.size())
    throw std::out_of_range("StateVector::set_basis_state");
  parallel_for(amp_.size(), [&](idx i) { amp_[i] = cplx{0.0, 0.0}; });
  amp_[basis] = 1.0;
}

void StateVector::apply_circuit(const Circuit& circuit) {
  if (circuit.num_qubits() > num_qubits_)
    throw std::invalid_argument("apply_circuit: register too small");
  VQSIM_SPAN_NAMED(span, "sim", "apply_circuit");
  if (span.active())
    span.set_args("{\"gates\":" + std::to_string(circuit.size()) +
                  ",\"qubits\":" + std::to_string(num_qubits_) + "}");
  if constexpr (kCheckInvariants) {
    // Every gate is unitary, so it must *preserve* the norm (not force it to
    // 1 — callers may run circuits on deliberately unnormalized states, e.g.
    // the vectorized density matrix whose norm is sqrt(purity)).
    const double norm_before = norm();
    std::size_t i = 0;
    for (const Gate& g : circuit.gates()) {
      apply_gate(g);
      const double n = norm();
      if (std::abs(n - norm_before) > 1e-6 * std::max(1.0, norm_before))
        invariant_failure("StateVector::apply_circuit: gate " +
                          std::to_string(i) + " (" + gate_to_string(g) +
                          ") changed the norm from " +
                          std::to_string(norm_before) + " to " +
                          std::to_string(n));
      ++i;
    }
    return;
  }
  for (const Gate& g : circuit.gates()) apply_gate(g);
}

double StateVector::norm() const {
  const double s = parallel_sum(
      amp_.size(), [&](idx i) { return std::norm(amp_[i]); });
  return std::sqrt(s);
}

void StateVector::normalize() {
  const double n = norm();
  if (n == 0.0) throw std::runtime_error("normalize: zero state");
  const double inv = 1.0 / n;
  parallel_for(amp_.size(), [&](idx i) { amp_[i] *= inv; });
}

cplx StateVector::inner_product(const StateVector& other) const {
  if (other.dim() != dim())
    throw std::invalid_argument("inner_product: dimension mismatch");
  double re = 0.0;
  double im = 0.0;
#ifdef _OPENMP
#pragma omp parallel for schedule(static) reduction(+ : re, im) if (dim() > (idx{1} << 12))
#endif
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(dim()); ++i) {
    const cplx v = std::conj(amp_[static_cast<idx>(i)]) *
                   other.amp_[static_cast<idx>(i)];
    re += v.real();
    im += v.imag();
  }
  return {re, im};
}

double StateVector::fidelity(const StateVector& other) const {
  return std::norm(inner_product(other));
}

double StateVector::probability(idx basis) const {
  if (basis >= amp_.size()) throw std::out_of_range("probability");
  return std::norm(amp_[basis]);
}

double StateVector::probability_one(int qubit) const {
  const unsigned q = static_cast<unsigned>(qubit);
  return parallel_sum(amp_.size(), [&](idx i) {
    return test_bit(i, q) ? std::norm(amp_[i]) : 0.0;
  });
}

int StateVector::measure(int qubit, Rng& rng) {
  const double p1 = probability_one(qubit);
  const int outcome = rng.uniform() < p1 ? 1 : 0;
  const double keep = outcome == 1 ? p1 : 1.0 - p1;
  const double inv = keep > 0.0 ? 1.0 / std::sqrt(keep) : 0.0;
  const unsigned q = static_cast<unsigned>(qubit);
  parallel_for(amp_.size(), [&](idx i) {
    if (static_cast<int>(test_bit(i, q)) == outcome)
      amp_[i] *= inv;
    else
      amp_[i] = cplx{0.0, 0.0};
  });
  return outcome;
}

}  // namespace vqsim
