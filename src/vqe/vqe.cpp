#include "vqe/vqe.hpp"

#include <memory>
#include <stdexcept>
#include <string>

#include "telemetry/telemetry.hpp"

namespace vqsim {

VqeResult run_vqe(EnergyEvaluator& executor, std::size_t num_parameters,
                  const VqeOptions& options) {
  std::vector<double> x0 = options.initial_parameters;
  if (x0.empty()) x0.assign(num_parameters, 0.0);
  if (x0.size() != num_parameters)
    throw std::invalid_argument("run_vqe: initial parameter count");

  const ObjectiveFn objective = [&executor](std::span<const double> theta) {
    const double energy = executor.evaluate(theta);
    if (VQSIM_TRACING())
      VQSIM_INSTANT(/*cat=*/"vqe", "energy",
                    "{\"energy\":" + std::to_string(energy) + "}");
    return energy;
  };

  std::unique_ptr<Optimizer> opt;
  switch (options.optimizer) {
    case OptimizerKind::kNelderMead:
    case OptimizerKind::kSpsa:
      if (options.checkpoint.enabled())
        throw std::invalid_argument(
            "run_vqe: checkpointing requires the Adam optimizer");
      opt = options.optimizer == OptimizerKind::kNelderMead
                ? std::unique_ptr<Optimizer>(
                      std::make_unique<NelderMead>(options.nelder_mead))
                : std::make_unique<Spsa>(options.spsa);
      break;
    case OptimizerKind::kAdam: {
      AdamOptions adam = options.adam;
      if (options.checkpoint.enabled()) adam.checkpoint = options.checkpoint;
      opt = std::make_unique<Adam>(adam);
      break;
    }
  }

  VQSIM_SPAN_NAMED(span, "vqe", "run_vqe");
  if (span.active())
    span.set_args("{\"parameters\":" + std::to_string(num_parameters) + "}");
  const OptimizerResult r = opt->minimize(objective, std::move(x0));

  VqeResult result;
  result.energy = r.fval;
  result.parameters = r.x;
  result.evaluations = r.evaluations;
  result.converged = r.converged;
  result.history = r.history;
  result.executor_stats = executor.stats();
  return result;
}

VqeResult run_vqe(const Ansatz& ansatz, const PauliSum& hamiltonian,
                  const VqeOptions& options) {
  SimulatorExecutor executor(ansatz, hamiltonian, options.executor);
  VqeResult result = run_vqe(executor, ansatz.num_parameters(), options);
  result.cost_model = model_energy_evaluation(ansatz, hamiltonian);
  return result;
}

}  // namespace vqsim
