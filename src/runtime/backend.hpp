// Backend virtualization: one uniform QPU interface over every simulator in
// the repo (the XACC "accelerator virtualization" idea of Claudino et al.,
// arXiv:2406.03466, mapped onto our substitution table).
//
// A QpuBackend advertises capabilities (register size, noise fidelity,
// exact-expectation support, Clifford restriction) and executes the three
// job kinds. Adapters wrap the existing executors unchanged:
//   StateVectorBackend   -> sim::StateVector        (NWQ-Sim role)
//   DensityMatrixBackend -> sim::DensityMatrix      (DM-Sim role, exact noise)
//   StabilizerBackend    -> sim::StabilizerState    (Clifford-only, CAFQA)
//   DistStateVectorBackend -> dist::DistStateVector over a private SimComm
//                             (SV-Sim multi-node role)
// A backend instance is NOT internally synchronized: the pool guarantees at
// most one job executes on a given backend at a time.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "analyze/cost.hpp"
#include "analyze/properties.hpp"
#include "analyze/verifier.hpp"
#include "dist/comm.hpp"
#include "exec/compiled_cache.hpp"
#include "exec/energy.hpp"
#include "runtime/job.hpp"
#include "sim/state_vector.hpp"
#include "vqe/ansatz.hpp"

namespace vqsim {
class DistStateVector;  // dist/dist_state_vector.hpp
}

namespace vqsim::runtime {

/// What a backend can do; matched against JobRequirements at dispatch.
struct BackendCaps {
  int max_qubits = 0;
  /// Noise models are honoured (exact open-system evolution); backends
  /// without this flag reject jobs whose NoiseModel is non-trivial.
  bool supports_noise = false;
  /// Expectations are exact (not shot-estimated).
  bool supports_exact_expectation = true;
  /// run_circuit() can return the final state vector.
  bool supports_statevector_output = true;
  /// Only Clifford circuits execute (stabilizer tableau).
  bool clifford_only = false;
  /// energy_batch() has a native batched path (exec::BatchedStateVector)
  /// instead of the default per-item loop; required by JobKind::kBatch.
  bool supports_batch = false;
};

/// True when a backend with `caps` can execute a job with `req`.
bool backend_can_run(const BackendCaps& caps, const JobRequirements& req);

/// How the most recent job on a backend survived (or didn't need to
/// survive) internal failures. Backends with in-job recovery (the
/// distributed backend's checkpoint replay) fill this; the pool copies it
/// into JobTelemetry.
struct RecoveryInfo {
  /// CommFailures absorbed inside the backend during the last job.
  std::uint64_t recoveries = 0;
  /// Gates re-executed from shard checkpoints during the last job.
  std::uint64_t replayed_gates = 0;
  /// Recovery mechanism ("checkpoint_replay"); empty when the job ran
  /// clean.
  std::string path;
};

/// Bridges into the analyzer's dependency-free capability model, so pool
/// rejections can explain per-backend why a job does not fit
/// (analyze::check_backend_compatibility).
analyze::BackendTarget to_analyze_target(const BackendCaps& caps,
                                         std::string name);
analyze::JobDemands to_analyze_demands(const JobRequirements& req);

class QpuBackend {
 public:
  virtual ~QpuBackend() = default;

  virtual const char* name() const = 0;
  virtual BackendCaps caps() const = 0;

  /// Which analyzer cost law this backend obeys (routing tie-breaks).
  virtual analyze::CostClass cost_class() const {
    return analyze::CostClass::kStateVector;
  }

  /// Predicted execution cost of `circuit` on this backend, in analyzer
  /// model units. Must be pure (no backend state mutation): the pool calls
  /// it from the submission path while a job may be executing.
  virtual analyze::CostEstimate estimate_cost(
      const Circuit& circuit, const analyze::CircuitProperties& props,
      int num_qubits) const {
    return analyze::estimate_cost(circuit, props, cost_class(), num_qubits);
  }

  /// Run `circuit` from |0...0> and return the final state.
  virtual StateVector run_circuit(const Circuit& circuit) = 0;

  /// <observable> after running `circuit` from |0...0> under `noise`
  /// (noise must be trivial unless caps().supports_noise).
  virtual double expectation(const Circuit& circuit,
                             const PauliSum& observable,
                             const NoiseModel& noise) = 0;

  /// Full VQE energy evaluation: <observable> at ansatz(theta). Matches the
  /// SimulatorExecutor direct path bit-for-bit on exact backends.
  virtual double energy(const Ansatz& ansatz, const PauliSum& observable,
                        std::span<const double> theta) = 0;

  /// K energy evaluations of one ansatz shape. The default is a sequential
  /// energy() loop; backends advertising caps().supports_batch override it
  /// with a single-pass batched evaluation (JobKind::kBatch lands here).
  virtual std::vector<double> energy_batch(
      const Ansatz& ansatz, const PauliSum& observable,
      const std::vector<std::vector<double>>& thetas) {
    std::vector<double> out;
    out.reserve(thetas.size());
    for (const std::vector<double>& theta : thetas)
      out.push_back(energy(ansatz, observable, theta));
    return out;
  }

  /// Recovery record of the most recent job executed on this backend.
  /// Backends without internal recovery return the default (clean) record.
  /// Read under the same serialization guarantee as execution — the pool
  /// reads it right after the job, before dispatching the next one.
  virtual RecoveryInfo last_recovery() const { return {}; }
};

/// Shared-memory state-vector simulator (the NWQ-Sim role). The only
/// backend with a native batched path: energy_batch() lowers K parameter
/// sets onto an exec::BatchedStateVector through a compiled-circuit cache
/// (pass a shared cache so a fleet compiles each ansatz shape once).
class StateVectorBackend final : public QpuBackend {
 public:
  explicit StateVectorBackend(
      int max_qubits = 28,
      std::shared_ptr<exec::CompiledCircuitCache> compile_cache = nullptr);

  const char* name() const override { return "statevector"; }
  BackendCaps caps() const override;
  StateVector run_circuit(const Circuit& circuit) override;
  double expectation(const Circuit& circuit, const PauliSum& observable,
                     const NoiseModel& noise) override;
  double energy(const Ansatz& ansatz, const PauliSum& observable,
                std::span<const double> theta) override;
  std::vector<double> energy_batch(
      const Ansatz& ansatz, const PauliSum& observable,
      const std::vector<std::vector<double>>& thetas) override;

 private:
  int max_qubits_;
  std::shared_ptr<exec::CompiledCircuitCache> compile_cache_;
  // Memoized batched program for the last (shape, observable) pair: a
  // gradient's stream of batch jobs shares one Hamiltonian, so the
  // observable compiles once instead of per job. Safe without a lock —
  // the pool serializes execution on a backend instance.
  std::uint64_t program_shape_fp_ = 0;
  std::uint64_t program_observable_fp_ = 0;
  std::unique_ptr<exec::BatchedEnergyProgram> program_;
};

/// Exact open-system simulator (the DM-Sim role): the only backend that
/// honours NoiseModels faithfully. Costs 4^n amplitudes, so the qubit
/// ceiling is small.
class DensityMatrixBackend final : public QpuBackend {
 public:
  explicit DensityMatrixBackend(int max_qubits = 10);

  const char* name() const override { return "density_matrix"; }
  BackendCaps caps() const override;
  analyze::CostClass cost_class() const override {
    return analyze::CostClass::kDensityMatrix;
  }
  StateVector run_circuit(const Circuit& circuit) override;
  double expectation(const Circuit& circuit, const PauliSum& observable,
                     const NoiseModel& noise) override;
  double energy(const Ansatz& ansatz, const PauliSum& observable,
                std::span<const double> theta) override;

 private:
  int max_qubits_;
};

/// Aaronson-Gottesman tableau: polynomial-time, Clifford circuits only
/// (the CAFQA bootstrap backend).
class StabilizerBackend final : public QpuBackend {
 public:
  explicit StabilizerBackend(int max_qubits = 64);

  const char* name() const override { return "stabilizer"; }
  BackendCaps caps() const override;
  analyze::CostClass cost_class() const override {
    return analyze::CostClass::kStabilizer;
  }
  StateVector run_circuit(const Circuit& circuit) override;
  double expectation(const Circuit& circuit, const PauliSum& observable,
                     const NoiseModel& noise) override;
  double energy(const Ansatz& ansatz, const PauliSum& observable,
                std::span<const double> theta) override;

 private:
  int max_qubits_;
};

/// Rank-failure knobs for DistStateVectorBackend.
struct DistBackendOptions {
  /// Deadline on every collective of the private communicator; zero (the
  /// default) disables enforcement — the un-deadlined control, which waits
  /// out stalls indefinitely.
  std::chrono::milliseconds comm_deadline{0};
  /// CommFailures a single job absorbs by checkpoint replay before the
  /// failure propagates to the pool (degraded-mode failover takes over).
  int max_recoveries = 2;
  /// Gates between in-memory shard snapshots; 0 picks the Young/Daly
  /// stride from dist/dist_checkpoint.hpp's cost model.
  std::size_t checkpoint_every = 0;
};

/// Rank-partitioned distributed state vector over a private in-process
/// communicator (the SV-Sim multi-node role). Each job sees a fresh
/// DistStateVector; the accumulated CommStats expose the traffic the
/// virtualized "cluster" moved.
///
/// Every job runs under the shard-checkpoint recovery driver: gates apply
/// through the comm plan with an in-memory DistSnapshot taken at the cost
/// model's stride, and a CommFailure (missed deadline / rank death) revives
/// the communicator, restores the latest snapshot, and replays — up to
/// options.max_recoveries times per job, after which the CommFailure
/// propagates and the pool's degraded-mode failover takes over.
class DistStateVectorBackend final : public QpuBackend {
 public:
  explicit DistStateVectorBackend(int num_ranks, int max_qubits = 24,
                                  DistBackendOptions options = {});

  const char* name() const override { return "dist_statevector"; }
  BackendCaps caps() const override;
  analyze::CostClass cost_class() const override {
    return analyze::CostClass::kDistStateVector;
  }
  analyze::CostEstimate estimate_cost(
      const Circuit& circuit, const analyze::CircuitProperties& props,
      int num_qubits) const override;
  StateVector run_circuit(const Circuit& circuit) override;
  double expectation(const Circuit& circuit, const PauliSum& observable,
                     const NoiseModel& noise) override;
  double energy(const Ansatz& ansatz, const PauliSum& observable,
                std::span<const double> theta) override;
  RecoveryInfo last_recovery() const override { return recovery_; }

  CommStats comm_stats() const { return comm_.stats(); }
  const SimComm& comm() const { return comm_; }
  const DistBackendOptions& options() const { return options_; }

 private:
  /// Plan, execute, and read out one job under checkpoint recovery;
  /// `finish` computes the job result from the completed register.
  template <typename Finish>
  auto run_recoverable(DistStateVector& psi, const Circuit& circuit,
                       Finish&& finish);

  SimComm comm_;
  int max_qubits_;
  DistBackendOptions options_;
  // Per-job recovery record; unsynchronized like StateVectorBackend's
  // program memo — the pool serializes execution on a backend instance.
  RecoveryInfo recovery_;
};

}  // namespace vqsim::runtime
