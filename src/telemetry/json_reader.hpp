// Minimal JSON reader — the inverse of json_writer.hpp, added for the
// resilience layer's checkpoint files.
//
// Hand-rolled for the same reason the writer is: the container bakes in no
// JSON library, and checkpoints only need objects, arrays, strings, finite
// numbers, booleans, and null. Numbers parse through strtod, so the
// writer's %.17g doubles round-trip bit-exactly — the property the
// checkpoint/resume bit-parity contract rests on.
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace vqsim::telemetry {

class JsonParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A parsed JSON document node. Keyed lookups throw JsonParseError on
/// missing members / type mismatches so checkpoint loaders fail loudly on
/// corrupt or foreign files instead of resuming from garbage.
class JsonValue {
 public:
  enum class Kind : unsigned char {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject
  };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  bool as_bool() const {
    require(Kind::kBool, "bool");
    return bool_;
  }
  double as_number() const {
    require(Kind::kNumber, "number");
    return number_;
  }
  std::uint64_t as_uint() const {
    return static_cast<std::uint64_t>(as_number());
  }
  const std::string& as_string() const {
    require(Kind::kString, "string");
    return string_;
  }
  const std::vector<JsonValue>& as_array() const {
    require(Kind::kArray, "array");
    return array_;
  }

  bool has(const std::string& key) const {
    require(Kind::kObject, "object");
    return object_.count(key) != 0;
  }
  const JsonValue& at(const std::string& key) const {
    require(Kind::kObject, "object");
    auto it = object_.find(key);
    if (it == object_.end())
      throw JsonParseError("json: missing key '" + key + "'");
    return it->second;
  }

  static JsonValue parse(std::string_view text);

  // -- construction (used by the parser) --------------------------------
  static JsonValue make_null() { return JsonValue(Kind::kNull); }
  static JsonValue make_bool(bool v) {
    JsonValue j(Kind::kBool);
    j.bool_ = v;
    return j;
  }
  static JsonValue make_number(double v) {
    JsonValue j(Kind::kNumber);
    j.number_ = v;
    return j;
  }
  static JsonValue make_string(std::string v) {
    JsonValue j(Kind::kString);
    j.string_ = std::move(v);
    return j;
  }
  static JsonValue make_array(std::vector<JsonValue> v) {
    JsonValue j(Kind::kArray);
    j.array_ = std::move(v);
    return j;
  }
  static JsonValue make_object(std::map<std::string, JsonValue> v) {
    JsonValue j(Kind::kObject);
    j.object_ = std::move(v);
    return j;
  }

 private:
  explicit JsonValue(Kind kind) : kind_(kind) {}
  void require(Kind kind, const char* what) const {
    if (kind_ != kind)
      throw JsonParseError(std::string("json: expected ") + what);
  }

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

namespace detail {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size())
      throw JsonParseError("json: trailing characters at offset " +
                           std::to_string(pos_));
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw JsonParseError("json: " + why + " at offset " +
                         std::to_string(pos_));
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }
  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }
  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }
  void expect(char c) {
    if (next() != c) fail(std::string("expected '") + c + "'");
  }
  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue::make_string(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue::make_bool(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return JsonValue::make_bool(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return JsonValue::make_null();
        fail("bad literal");
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    std::map<std::string, JsonValue> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members.insert_or_assign(std::move(key), parse_value());
      skip_ws();
      const char c = next();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    return JsonValue::make_object(std::move(members));
  }

  JsonValue parse_array() {
    expect('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    for (;;) {
      items.push_back(parse_value());
      skip_ws();
      const char c = next();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']'");
    }
    return JsonValue::make_array(std::move(items));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = next();
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = next();
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = next();
            code <<= 4;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape");
          }
          // The writer only emits \u00XX control escapes; decode the
          // low byte and encode anything else as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("bad escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("bad number");
    return JsonValue::make_number(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace detail

inline JsonValue JsonValue::parse(std::string_view text) {
  return detail::JsonParser(text).parse_document();
}

}  // namespace vqsim::telemetry
