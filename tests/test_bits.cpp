#include "common/bits.hpp"

#include <gtest/gtest.h>

#include "common/aligned.hpp"
#include "common/rng.hpp"

namespace vqsim {
namespace {

TEST(Bits, InsertZeroBitBasics) {
  EXPECT_EQ(insert_zero_bit(0b0, 0), 0u);
  EXPECT_EQ(insert_zero_bit(0b1, 0), 0b10u);
  EXPECT_EQ(insert_zero_bit(0b101, 1), 0b1001u);
  EXPECT_EQ(insert_zero_bit(0b111, 3), 0b0111u);
  EXPECT_EQ(insert_zero_bit(0b111, 0), 0b1110u);
}

TEST(Bits, InsertZeroBitEnumeratesPairsExactly) {
  // Inserting a zero bit at position q over k in [0, 2^(n-1)) must produce
  // every n-bit index with bit q clear, exactly once.
  const unsigned n = 6;
  for (unsigned q = 0; q < n; ++q) {
    std::vector<bool> seen(pow2(n), false);
    for (idx k = 0; k < pow2(n - 1); ++k) {
      const idx i = insert_zero_bit(k, q);
      ASSERT_LT(i, pow2(n));
      EXPECT_FALSE(test_bit(i, q));
      EXPECT_FALSE(seen[i]);
      seen[i] = true;
    }
  }
}

TEST(Bits, InsertTwoZeroBitsOrderIndependent) {
  for (idx v = 0; v < 64; ++v)
    for (unsigned p = 0; p < 6; ++p)
      for (unsigned q = 0; q < 6; ++q) {
        if (p == q) continue;
        EXPECT_EQ(insert_two_zero_bits(v, p, q), insert_two_zero_bits(v, q, p));
      }
}

TEST(Bits, InsertTwoZeroBitsClearsBoth) {
  for (idx v = 0; v < 256; ++v) {
    const idx r = insert_two_zero_bits(v, 2, 5);
    EXPECT_FALSE(test_bit(r, 2));
    EXPECT_FALSE(test_bit(r, 5));
  }
}

TEST(Bits, Parity) {
  EXPECT_EQ(parity(0), 0);
  EXPECT_EQ(parity(0b1), 1);
  EXPECT_EQ(parity(0b11), 0);
  EXPECT_EQ(parity(0b10110), 1);
}

TEST(Bits, SetAndTest) {
  idx v = 0;
  v = set_bit(v, 3);
  EXPECT_TRUE(test_bit(v, 3));
  EXPECT_FALSE(test_bit(v, 2));
}

TEST(Aligned, VectorIsCacheAligned) {
  AmpVector v(1024);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % 64, 0u);
}

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, UniformRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, RademacherIsSigned) {
  Rng rng(2);
  int plus = 0;
  for (int i = 0; i < 1000; ++i) {
    const double r = rng.rademacher();
    EXPECT_TRUE(r == 1.0 || r == -1.0);
    if (r > 0) ++plus;
  }
  EXPECT_GT(plus, 400);
  EXPECT_LT(plus, 600);
}

}  // namespace
}  // namespace vqsim
