#include "sim/density_matrix.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sim/expectation.hpp"
#include "sim/noise.hpp"

namespace vqsim {
namespace {

StateVector random_state(int n, Rng& rng) {
  AmpVector amps(idx{1} << n);
  for (cplx& a : amps) a = rng.normal_cplx();
  StateVector sv = StateVector::from_amplitudes(std::move(amps));
  sv.normalize();
  return sv;
}

PauliSum random_hermitian_sum(int n, std::size_t terms, Rng& rng) {
  PauliSum h(n);
  for (std::size_t t = 0; t < terms; ++t) {
    PauliString s;
    for (int q = 0; q < n; ++q)
      s.set_axis(q, static_cast<PauliAxis>(rng.uniform_index(4)));
    h.add_term(rng.normal(), s);
  }
  h.simplify();
  return h;
}

TEST(KrausChannel, StandardChannelsAreTracePreserving) {
  EXPECT_TRUE(KrausChannel::depolarizing(0.0).is_trace_preserving());
  EXPECT_TRUE(KrausChannel::depolarizing(0.3).is_trace_preserving());
  EXPECT_TRUE(KrausChannel::depolarizing(1.0).is_trace_preserving());
  EXPECT_TRUE(KrausChannel::amplitude_damping(0.25).is_trace_preserving());
  EXPECT_TRUE(KrausChannel::phase_damping(0.4).is_trace_preserving());
  EXPECT_THROW(KrausChannel::depolarizing(-0.1), std::invalid_argument);
  EXPECT_THROW(KrausChannel::amplitude_damping(1.5), std::invalid_argument);
}

TEST(DensityMatrix, PureStateBasics) {
  DensityMatrix rho(2);
  EXPECT_NEAR(rho.trace(), 1.0, 1e-14);
  EXPECT_NEAR(rho.purity(), 1.0, 1e-14);
  EXPECT_NEAR(std::abs(rho.element(0, 0) - cplx{1.0, 0.0}), 0.0, 1e-14);
}

TEST(DensityMatrix, MatchesStateVectorOnUnitaryCircuits) {
  Rng rng(401);
  const int n = 4;
  Circuit c(n);
  for (int i = 0; i < 40; ++i) {
    const int q0 = static_cast<int>(rng.uniform_index(n));
    const int q1 = (q0 + 1 + static_cast<int>(rng.uniform_index(n - 1))) % n;
    if (rng.uniform() < 0.5)
      c.u3(rng.uniform(-3, 3), rng.uniform(-3, 3), rng.uniform(-3, 3), q0);
    else
      c.cx(q0, q1);
  }
  StateVector psi(n);
  psi.apply_circuit(c);
  DensityMatrix rho(n);
  rho.apply_circuit(c);

  EXPECT_NEAR(rho.trace(), 1.0, 1e-10);
  EXPECT_NEAR(rho.purity(), 1.0, 1e-10);
  const PauliSum h = random_hermitian_sum(n, 20, rng);
  EXPECT_NEAR(rho.expectation(h), expectation(psi, h), 1e-9);
  EXPECT_NEAR(rho.probability_one(2), psi.probability_one(2), 1e-10);
}

TEST(DensityMatrix, FromStateReproducesOuterProduct) {
  Rng rng(402);
  const StateVector psi = random_state(3, rng);
  const DensityMatrix rho = DensityMatrix::from_state(psi);
  for (idx r = 0; r < 8; ++r)
    for (idx c = 0; c < 8; ++c)
      EXPECT_NEAR(std::abs(rho.element(r, c) -
                           psi.data()[r] * std::conj(psi.data()[c])),
                  0.0, 1e-12);
  EXPECT_NEAR(rho.purity(), 1.0, 1e-10);
}

TEST(DensityMatrix, FullDepolarizingGivesMaximallyMixed) {
  DensityMatrix rho(1);
  Gate h;
  h.kind = GateKind::kH;
  h.q0 = 0;
  rho.apply_gate(h);
  rho.apply_channel(KrausChannel::depolarizing(1.0), 0);
  // p = 1 depolarizing: rho -> (rho + X rho X + Y rho Y + Z rho Z)/3, whose
  // fixed point family includes I/2 — for any input it lands on a state
  // with purity <= 1, and repeated application converges to I/2.
  for (int i = 0; i < 20; ++i)
    rho.apply_channel(KrausChannel::depolarizing(0.75), 0);
  EXPECT_NEAR(rho.trace(), 1.0, 1e-10);
  EXPECT_NEAR(rho.purity(), 0.5, 1e-6);
  PauliSum z(1);
  z.add_term(1.0, "Z");
  EXPECT_NEAR(rho.expectation(z), 0.0, 1e-8);
}

TEST(DensityMatrix, AmplitudeDampingFixedPoint) {
  DensityMatrix rho(1);
  Gate x;
  x.kind = GateKind::kX;
  x.q0 = 0;
  rho.apply_gate(x);  // |1><1|
  EXPECT_NEAR(rho.probability_one(0), 1.0, 1e-12);
  for (int i = 0; i < 60; ++i)
    rho.apply_channel(KrausChannel::amplitude_damping(0.2), 0);
  // Decays to the ground state.
  EXPECT_NEAR(rho.probability_one(0), 0.0, 1e-5);
  EXPECT_NEAR(rho.purity(), 1.0, 1e-4);
}

TEST(DensityMatrix, PhaseDampingKillsCoherenceKeepsPopulations) {
  DensityMatrix rho(1);
  Gate h;
  h.kind = GateKind::kH;
  h.q0 = 0;
  rho.apply_gate(h);  // |+><+|
  for (int i = 0; i < 50; ++i)
    rho.apply_channel(KrausChannel::phase_damping(0.3), 0);
  PauliSum x(1);
  x.add_term(1.0, "X");
  PauliSum z(1);
  z.add_term(1.0, "Z");
  // Coherence decays as (1 - gamma)^(steps/2) ~ 1.3e-4 after 50 steps.
  EXPECT_NEAR(rho.expectation(x), 0.0, 1e-3);
  EXPECT_NEAR(rho.expectation(z), 0.0, 1e-10); // populations untouched
  EXPECT_NEAR(rho.probability_one(0), 0.5, 1e-10);
}

TEST(DensityMatrix, TrajectoryAverageConvergesToExactChannel) {
  // Cross-validation of the two noise backends: the trajectory sampler's
  // depolarizing noise must statistically reproduce the exact Kraus
  // evolution of the density matrix.
  const int n = 2;
  Circuit c(n);
  c.h(0).cx(0, 1).rz(0.7, 1).h(1);
  const double p = 0.05;

  // Exact: channel after every gate on each operand qubit.
  DensityMatrix rho(n);
  for (const Gate& g : c.gates()) {
    rho.apply_gate(g);
    for (int q : {g.q0, g.q1}) {
      if (q < 0) continue;
      rho.apply_channel(KrausChannel::depolarizing(p), q);
    }
  }

  PauliSum h(n);
  h.add_term(1.0, "ZZ");
  h.add_term(0.5, "XI");
  const double exact = rho.expectation(h);

  NoiseModel model;
  model.depolarizing = p;
  Rng rng(403);
  const double sampled = noisy_expectation(c, h, model, 4000, rng);
  EXPECT_NEAR(sampled, exact, 0.04);
}

TEST(DensityMatrix, RejectsOversizedRegisters) {
  EXPECT_THROW(DensityMatrix(14), std::invalid_argument);
  EXPECT_THROW(DensityMatrix(0), std::invalid_argument);
}

}  // namespace
}  // namespace vqsim
