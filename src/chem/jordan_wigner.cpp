#include "chem/jordan_wigner.hpp"

#include <stdexcept>

namespace vqsim {

PauliSum jw_ladder(const LadderOp& op, int num_modes) {
  if (op.mode >= num_modes)
    throw std::out_of_range("jw_ladder: mode exceeds register");
  PauliSum out(num_modes);

  PauliString xs;  // Z chain then X on the mode
  PauliString ys;  // Z chain then Y on the mode
  for (int q = 0; q < op.mode; ++q) {
    xs.set_axis(q, PauliAxis::kZ);
    ys.set_axis(q, PauliAxis::kZ);
  }
  xs.set_axis(op.mode, PauliAxis::kX);
  ys.set_axis(op.mode, PauliAxis::kY);

  const cplx y_coeff = op.creation ? cplx{0.0, -0.5} : cplx{0.0, 0.5};
  out.add_term(0.5, xs);
  out.add_term(y_coeff, ys);
  return out;
}

PauliSum jordan_wigner(const FermionOp& op) {
  const int n = op.num_modes();
  PauliSum out(n);
  // Accumulate raw terms and merge once at the end; merging per fermion
  // term would be quadratic in the Hamiltonian size.
  for (const FermionTerm& term : op.terms()) {
    PauliSum product(n);
    product.add_term(term.coefficient, PauliString::identity());
    for (const LadderOp& lop : term.ops)
      product = product * jw_ladder(lop, n);
    for (const PauliTerm& t : product.terms())
      out.add_term(t.coefficient, t.string);
  }
  out.simplify();
  return out;
}

}  // namespace vqsim
