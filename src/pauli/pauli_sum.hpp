// Weighted sums of Pauli strings — the observable type of the whole stack.
//
// Downfolded Hamiltonians arrive here via the Jordan-Wigner transform; the
// VQE executors consume PauliSum as the measured observable (paper Fig. 2:
// "Quantum Observable").
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

#include "pauli/pauli_string.hpp"

namespace vqsim {

struct PauliTerm {
  cplx coefficient;
  PauliString string;
};

class PauliSum {
 public:
  PauliSum() = default;
  explicit PauliSum(int num_qubits) : num_qubits_(num_qubits) {}
  PauliSum(int num_qubits, std::initializer_list<PauliTerm> terms);

  int num_qubits() const { return num_qubits_; }
  std::size_t size() const { return terms_.size(); }
  bool empty() const { return terms_.empty(); }
  const std::vector<PauliTerm>& terms() const { return terms_; }
  const PauliTerm& operator[](std::size_t i) const { return terms_[i]; }

  /// Append a term (no simplification; call simplify() when done).
  void add_term(cplx coefficient, const PauliString& string);
  void add_term(cplx coefficient, const std::string& spec);

  /// Merge duplicate strings and drop terms with |coeff| <= tol.
  void simplify(double tol = 1e-12);

  PauliSum& operator+=(const PauliSum& rhs);
  PauliSum& operator-=(const PauliSum& rhs);
  PauliSum& operator*=(cplx s);
  friend PauliSum operator+(PauliSum a, const PauliSum& b) { return a += b; }
  friend PauliSum operator-(PauliSum a, const PauliSum& b) { return a -= b; }
  friend PauliSum operator*(PauliSum a, cplx s) { return a *= s; }
  friend PauliSum operator*(cplx s, PauliSum a) { return a *= s; }

  /// Operator product (simplified).
  PauliSum operator*(const PauliSum& rhs) const;

  /// Hermitian conjugate.
  PauliSum adjoint() const;

  /// [this, rhs] = this*rhs - rhs*this (simplified).
  PauliSum commutator(const PauliSum& rhs) const;

  /// All coefficients real to `tol` (Hermitian observable check).
  bool is_hermitian(double tol = 1e-10) const;

  /// Coefficient of the identity string (0 if absent).
  cplx identity_coefficient() const;

  /// Sum of |coefficients| (useful for truncation diagnostics).
  double one_norm() const;

  /// Multi-line human-readable dump.
  std::string to_string() const;

 private:
  int num_qubits_ = 0;
  std::vector<PauliTerm> terms_;
};

}  // namespace vqsim
