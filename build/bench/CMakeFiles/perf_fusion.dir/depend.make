# Empty dependencies file for perf_fusion.
# This may be replaced when dependencies are built.
