// Dense complex matrices.
//
// Mat2/Mat4 are the fixed-size operands of gate kernels and the fusion pass;
// DenseMatrix is the arbitrary-size reference implementation used by tests
// (kron-expanded gate checks) and by the Jacobi eigensolver.
#pragma once

#include <array>
#include <cstddef>
#include <initializer_list>
#include <vector>

#include "common/types.hpp"

namespace vqsim {

/// 2x2 complex matrix in row-major order.
struct Mat2 {
  std::array<cplx, 4> m{};

  cplx& operator()(int r, int c) { return m[static_cast<std::size_t>(2 * r + c)]; }
  const cplx& operator()(int r, int c) const {
    return m[static_cast<std::size_t>(2 * r + c)];
  }

  static Mat2 identity() {
    Mat2 r;
    r(0, 0) = 1.0;
    r(1, 1) = 1.0;
    return r;
  }
  static Mat2 zero() { return Mat2{}; }

  // Inline: this product sits on the compiled-circuit bind hot path (fusion
  // replay), where the call overhead of an out-of-line 2x2 product is
  // comparable to its arithmetic.
  Mat2 operator*(const Mat2& rhs) const {
    Mat2 r;
    for (int i = 0; i < 2; ++i)
      for (int j = 0; j < 2; ++j) {
        cplx s = 0.0;
        for (int k = 0; k < 2; ++k) s += (*this)(i, k) * rhs(k, j);
        r(i, j) = s;
      }
    return r;
  }
  Mat2 operator+(const Mat2& rhs) const;
  Mat2 operator*(cplx s) const;
  Mat2 adjoint() const;
  bool is_unitary(double tol = 1e-10) const;
  bool approx_equal(const Mat2& rhs, double tol = 1e-10) const;
};

/// 4x4 complex matrix in row-major order. The basis convention for a gate on
/// qubits (q0, q1) is index = (bit(q1) << 1) | bit(q0): the *first* qubit
/// argument is the least significant bit of the 4x4 index.
struct Mat4 {
  std::array<cplx, 16> m{};

  cplx& operator()(int r, int c) { return m[static_cast<std::size_t>(4 * r + c)]; }
  const cplx& operator()(int r, int c) const {
    return m[static_cast<std::size_t>(4 * r + c)];
  }

  static Mat4 identity() {
    Mat4 r;
    for (int i = 0; i < 4; ++i) r(i, i) = 1.0;
    return r;
  }
  static Mat4 zero() { return Mat4{}; }

  // Inline for the same reason as Mat2::operator* — fusion replay chains
  // these products per evaluation.
  Mat4 operator*(const Mat4& rhs) const {
    Mat4 r;
    for (int i = 0; i < 4; ++i)
      for (int j = 0; j < 4; ++j) {
        cplx s = 0.0;
        for (int k = 0; k < 4; ++k) s += (*this)(i, k) * rhs(k, j);
        r(i, j) = s;
      }
    return r;
  }
  Mat4 operator+(const Mat4& rhs) const;
  Mat4 operator*(cplx s) const;
  Mat4 adjoint() const;
  bool is_unitary(double tol = 1e-10) const;
  bool approx_equal(const Mat4& rhs, double tol = 1e-10) const;
};

/// kron(a, b) with `a` acting on the high bit: result index (ra<<1|rb, ca<<1|cb).
inline Mat4 kron(const Mat2& a, const Mat2& b) {
  Mat4 r;
  for (int ra = 0; ra < 2; ++ra)
    for (int rb = 0; rb < 2; ++rb)
      for (int ca = 0; ca < 2; ++ca)
        for (int cb = 0; cb < 2; ++cb)
          r(ra * 2 + rb, ca * 2 + cb) = a(ra, ca) * b(rb, cb);
  return r;
}

/// Embed a 1-qubit matrix acting on the low (lhs) or high (rhs) bit of a pair.
inline Mat4 embed_low(const Mat2& a) { return kron(Mat2::identity(), a); }
inline Mat4 embed_high(const Mat2& a) { return kron(a, Mat2::identity()); }

/// Swap the two qubit slots of a 4x4 matrix: M' = S M S with S the SWAP.
inline Mat4 swap_qubit_order(const Mat4& a) {
  // Conjugate by SWAP: permute row/col indices exchanging the two bits.
  auto perm = [](int i) { return ((i & 1) << 1) | ((i >> 1) & 1); };
  Mat4 r;
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) r(perm(i), perm(j)) = a(i, j);
  return r;
}

/// Arbitrary-size dense complex matrix (row-major). Reference-quality, not
/// performance-critical: used for validation and small eigenproblems.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols) {}

  static DenseMatrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  cplx& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const cplx& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  DenseMatrix operator*(const DenseMatrix& rhs) const;
  DenseMatrix operator+(const DenseMatrix& rhs) const;
  DenseMatrix operator-(const DenseMatrix& rhs) const;
  DenseMatrix operator*(cplx s) const;
  DenseMatrix adjoint() const;

  /// y = M x.
  std::vector<cplx> apply(const std::vector<cplx>& x) const;

  bool is_hermitian(double tol = 1e-10) const;
  bool is_unitary(double tol = 1e-10) const;
  double max_abs_diff(const DenseMatrix& rhs) const;

  const std::vector<cplx>& data() const { return data_; }
  std::vector<cplx>& data() { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<cplx> data_;
};

/// Kronecker product of arbitrary dense matrices (a on high bits).
DenseMatrix kron(const DenseMatrix& a, const DenseMatrix& b);

}  // namespace vqsim
