# Empty compiler generated dependencies file for fig4_fusion.
# This may be replaced when dependencies are built.
