file(REMOVE_RECURSE
  "libvqsim_dist.a"
)
