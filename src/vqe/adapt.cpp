#include "vqe/adapt.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "chem/hartree_fock.hpp"
#include "chem/uccsd.hpp"
#include "resilience/fault_injection.hpp"
#include "sim/expectation.hpp"
#include "telemetry/json_writer.hpp"
#include "telemetry/telemetry.hpp"

namespace vqsim {
namespace {

void apply_generator(StateVector* psi, const PauliSum& g, double theta) {
  for (const PauliTerm& t : g.terms())
    psi->apply_exp_pauli(t.string, theta * t.coefficient.real());
}

void apply_generator_inverse(StateVector* psi, const PauliSum& g,
                             double theta) {
  for (auto it = g.terms().rbegin(); it != g.terms().rend(); ++it)
    psi->apply_exp_pauli(it->string, -theta * it->coefficient.real());
}

}  // namespace

AdaptAnsatzState::AdaptAnsatzState(int num_qubits, idx reference_state,
                                   const std::vector<PauliSum>* pool)
    : num_qubits_(num_qubits), reference_(reference_state), pool_(pool) {
  if (pool == nullptr)
    throw std::invalid_argument("AdaptAnsatzState: null pool");
}

void AdaptAnsatzState::prepare(StateVector* psi,
                               std::span<const std::size_t> sequence,
                               std::span<const double> theta) const {
  if (psi->num_qubits() != num_qubits_)
    throw std::invalid_argument("AdaptAnsatzState::prepare: register size");
  if (sequence.size() != theta.size())
    throw std::invalid_argument("AdaptAnsatzState::prepare: length mismatch");
  psi->set_basis_state(reference_);
  for (std::size_t k = 0; k < sequence.size(); ++k)
    apply_generator(psi, (*pool_)[sequence[k]], theta[k]);
}

void AdaptAnsatzState::gradient(const CompiledPauliSum& hamiltonian,
                                std::span<const std::size_t> sequence,
                                std::span<const double> theta,
                                std::span<double> out) const {
  const std::size_t K = sequence.size();
  if (out.size() != K)
    throw std::invalid_argument("AdaptAnsatzState::gradient: output size");

  StateVector mu(num_qubits_);
  prepare(&mu, sequence, theta);
  StateVector nu(num_qubits_);
  hamiltonian.apply(mu, &nu);  // nu = H |psi>

  StateVector g_mu(num_qubits_);
  for (std::size_t k = K; k-- > 0;) {
    // g_k = 2 Im <nu_k | G_k | mu_k> with mu_k = U_k..U_1|ref>,
    // nu_k = U_{k+1}^dag .. U_K^dag H|psi>.
    apply_pauli_sum((*pool_)[sequence[k]], mu, &g_mu);
    out[k] = 2.0 * nu.inner_product(g_mu).imag();
    if (k > 0) {
      apply_generator_inverse(&mu, (*pool_)[sequence[k]], theta[k]);
      apply_generator_inverse(&nu, (*pool_)[sequence[k]], theta[k]);
    }
  }
}

AdaptVqe::AdaptVqe(PauliSum hamiltonian, int nelec, AdaptOptions options)
    : hamiltonian_(std::move(hamiltonian)),
      reference_(hf_basis_state(nelec)),
      options_(options) {
  const int nq = hamiltonian_.num_qubits();
  for (const Excitation& ex : uccsd_excitations(nq, nelec))
    pool_.push_back(excitation_generator_pauli(ex, nq));
}

AdaptVqe::AdaptVqe(PauliSum hamiltonian, idx reference_state,
                   std::vector<PauliSum> pool, AdaptOptions options)
    : hamiltonian_(std::move(hamiltonian)),
      reference_(reference_state),
      pool_(std::move(pool)),
      options_(options) {
  if (pool_.empty()) throw std::invalid_argument("AdaptVqe: empty pool");
}

AdaptResult AdaptVqe::run() {
  const int nq = hamiltonian_.num_qubits();
  AdaptAnsatzState ansatz(nq, reference_, &pool_);
  const CompiledPauliSum h_compiled(hamiltonian_, nq);

  AdaptResult result;
  std::vector<std::size_t> sequence;
  std::vector<double> theta;

  StateVector psi(nq);
  StateVector h_psi(nq);
  StateVector g_psi(nq);

  // Outer-iteration checkpointing: the snapshot is (sequence, theta,
  // records). The inner Adam optimizer starts fresh from the restored
  // theta every outer iteration, so nothing else is live across the
  // boundary and a resumed run is bit-identical to the uninterrupted one.
  const resilience::CheckpointOptions& ckpt = options_.checkpoint;
  const auto save_checkpoint = [&](std::size_t completed_iterations) {
    telemetry::JsonWriter w;
    w.begin_object();
    w.key("iteration");
    w.value(static_cast<std::uint64_t>(completed_iterations));
    w.key("energy");
    w.value(result.energy);
    w.key("sequence");
    w.begin_array();
    for (std::size_t s : sequence) w.value(static_cast<std::uint64_t>(s));
    w.end_array();
    w.key("theta");
    w.begin_array();
    for (double v : theta) w.value(v);
    w.end_array();
    w.key("records");
    w.begin_array();
    for (const AdaptIterationRecord& r : result.iterations) {
      w.begin_object();
      w.key("iteration");
      w.value(static_cast<std::uint64_t>(r.iteration));
      w.key("pool_index");
      w.value(static_cast<std::uint64_t>(r.pool_index));
      w.key("max_pool_gradient");
      w.value(r.max_pool_gradient);
      w.key("energy");
      w.value(r.energy);
      w.key("parameters");
      w.value(static_cast<std::uint64_t>(r.parameters));
      w.end_object();
    }
    w.end_array();
    w.end_object();
    resilience::write_checkpoint(ckpt.path, "adapt", w.str());
  };

  std::size_t start_it = 0;
  if (ckpt.enabled() && ckpt.resume &&
      resilience::checkpoint_exists(ckpt.path)) {
    const telemetry::JsonValue p =
        resilience::read_checkpoint(ckpt.path, "adapt");
    start_it = static_cast<std::size_t>(p.at("iteration").as_uint());
    result.energy = p.at("energy").as_number();
    sequence.clear();
    for (const telemetry::JsonValue& s : p.at("sequence").as_array())
      sequence.push_back(static_cast<std::size_t>(s.as_uint()));
    theta.clear();
    for (const telemetry::JsonValue& v : p.at("theta").as_array())
      theta.push_back(v.as_number());
    for (const telemetry::JsonValue& r : p.at("records").as_array()) {
      AdaptIterationRecord rec;
      rec.iteration = static_cast<std::size_t>(r.at("iteration").as_uint());
      rec.pool_index = static_cast<std::size_t>(r.at("pool_index").as_uint());
      rec.max_pool_gradient = r.at("max_pool_gradient").as_number();
      rec.energy = r.at("energy").as_number();
      rec.parameters = static_cast<std::size_t>(r.at("parameters").as_uint());
      result.iterations.push_back(rec);
    }
    for (std::size_t s : sequence)
      if (s >= pool_.size())
        throw resilience::CheckpointError(
            "adapt checkpoint: pool index out of range (different pool?)");
    if (sequence.size() != theta.size())
      throw resilience::CheckpointError(
          "adapt checkpoint: sequence/theta length mismatch");
  }

  for (std::size_t it = start_it; it < options_.max_operators; ++it) {
    VQSIM_FAULT_POINT("adapt.iteration", static_cast<int>(it));
    VQSIM_SPAN_NAMED(iter_span, "vqe", "adapt_iteration");
    VQSIM_COUNTER(c_iters, "adapt.iterations_total");
    VQSIM_COUNTER_INC(c_iters);
    // Pool-gradient screening at the current optimum:
    // g_p = -2 Im <G_p psi | H psi>.
    ansatz.prepare(&psi, sequence, theta);
    h_compiled.apply(psi, &h_psi);
    double best_g = 0.0;
    std::size_t best_p = 0;
    for (std::size_t p = 0; p < pool_.size(); ++p) {
      apply_pauli_sum(pool_[p], psi, &g_psi);
      const double g = -2.0 * g_psi.inner_product(h_psi).imag();
      if (std::abs(g) > std::abs(best_g)) {
        best_g = g;
        best_p = p;
      }
    }
    if (std::abs(best_g) < options_.gradient_tolerance) {
      result.converged = true;
      break;
    }

    sequence.push_back(best_p);
    theta.push_back(0.0);

    // Full re-optimization with exact analytic gradients.
    const ObjectiveFn objective = [&](std::span<const double> x) {
      ansatz.prepare(&psi, sequence, x);
      return h_compiled.expectation(psi);
    };
    const GradientFn grad = [&](std::span<const double> x,
                                std::span<double> out) {
      ansatz.gradient(h_compiled, sequence, x, out);
    };
    Adam inner(options_.inner, grad);
    OptimizerResult opt = inner.minimize(objective, theta);
    theta = opt.x;

    AdaptIterationRecord rec;
    rec.iteration = it + 1;
    rec.pool_index = best_p;
    rec.max_pool_gradient = std::abs(best_g);
    rec.energy = opt.fval;
    rec.parameters = theta.size();
    result.iterations.push_back(rec);
    result.energy = opt.fval;
    if (iter_span.active())
      iter_span.set_args(
          "{\"iter\":" + std::to_string(rec.iteration) +
          ",\"energy\":" + std::to_string(rec.energy) +
          ",\"max_pool_gradient\":" + std::to_string(rec.max_pool_gradient) +
          ",\"pool_index\":" + std::to_string(rec.pool_index) + "}");

    if (ckpt.enabled() && (it + 1) % ckpt.stride() == 0)
      save_checkpoint(it + 1);

    if (!std::isnan(options_.reference_energy) &&
        std::abs(opt.fval - options_.reference_energy) <
            options_.reference_target) {
      result.converged = true;
      break;
    }
  }

  result.parameters = std::move(theta);
  result.operator_sequence = std::move(sequence);
  if (result.iterations.empty()) {
    // Pool gradients vanished at the reference: report the reference energy.
    ansatz.prepare(&psi, {}, {});
    result.energy = expectation(psi, hamiltonian_);
  }
  return result;
}

}  // namespace vqsim
