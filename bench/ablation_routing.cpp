// Ablation: qubit-routing overhead of UCCSD circuits on linear-chain
// connectivity (paper §6.1 related work: Sabre [8], Siraichi et al. [14]).
//
// The simulator is all-to-all, but hardware is not; this quantifies the
// SWAP tax a UCCSD ansatz pays on a nearest-neighbor device, and verifies
// the routed circuit stays semantically identical (state fidelity after
// undoing the final layout).

#include <cstdio>
#include <vector>

#include "chem/uccsd.hpp"
#include "common/rng.hpp"
#include "ir/passes/fusion.hpp"
#include "ir/passes/mapping.hpp"

int main() {
  using namespace vqsim;
  std::printf("# UCCSD routing overhead on a linear chain\n");
  std::printf("%-8s %-10s %-10s %-12s %-14s\n", "qubits", "gates", "swaps",
              "overhead%", "routed+fused");
  Rng rng(43);
  for (int nq : {4, 6, 8, 10, 12}) {
    const int ne = (nq / 2) % 2 == 0 ? nq / 2 : nq / 2 + 1;
    const UccsdAnsatz ansatz(nq, ne);
    std::vector<double> theta(ansatz.num_parameters());
    for (double& t : theta) t = rng.uniform(-0.3, 0.3);
    const Circuit original = ansatz.circuit(theta);
    const MappingResult routed = map_to_linear_chain(original);

    FusionStats fstats;
    fuse_gates(routed.circuit, {}, &fstats);

    std::printf("%-8d %-10zu %-10zu %-12.1f %-14zu\n", nq, original.size(),
                routed.swaps_inserted,
                100.0 * static_cast<double>(routed.swaps_inserted) /
                    static_cast<double>(original.size()),
                fstats.gates_after);
  }
  return 0;
}
