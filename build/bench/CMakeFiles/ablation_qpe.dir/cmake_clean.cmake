file(REMOVE_RECURSE
  "CMakeFiles/ablation_qpe.dir/ablation_qpe.cpp.o"
  "CMakeFiles/ablation_qpe.dir/ablation_qpe.cpp.o.d"
  "ablation_qpe"
  "ablation_qpe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_qpe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
