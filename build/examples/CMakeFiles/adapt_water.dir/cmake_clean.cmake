file(REMOVE_RECURSE
  "CMakeFiles/adapt_water.dir/adapt_water.cpp.o"
  "CMakeFiles/adapt_water.dir/adapt_water.cpp.o.d"
  "adapt_water"
  "adapt_water.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapt_water.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
