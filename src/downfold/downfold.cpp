#include "downfold/downfold.hpp"

#include <stdexcept>

#include "downfold/mp2.hpp"

namespace vqsim {

FermionOp confine_to_active(const FermionOp& op, const ActiveSpace& space) {
  FermionOp out(2 * space.n_active);
  const int lo = 2 * space.first();
  const int hi = 2 * space.last();  // exclusive, spin orbitals
  for (const FermionTerm& term : op.terms()) {
    bool internal = true;
    for (const LadderOp& lop : term.ops) {
      if (lop.mode < lo || lop.mode >= hi) {
        internal = false;
        break;
      }
    }
    if (!internal) continue;
    std::vector<LadderOp> remapped = term.ops;
    for (LadderOp& lop : remapped) lop.mode -= lo;
    out.add_term(term.coefficient, std::move(remapped));
  }
  out.simplify();
  return out;
}

DownfoldResult hermitian_downfold(const MolecularIntegrals& ints,
                                  const ActiveSpace& space,
                                  const DownfoldOptions& options) {
  if (options.commutator_order < 0 || options.commutator_order > 2)
    throw std::invalid_argument("hermitian_downfold: order must be 0..2");

  const std::uint64_t occ = hf_occupation_mask(ints.nelec);
  const NormalOrderSpec spec{occ, /*max_ops=*/4, options.threshold};

  const FermionOp h = molecular_hamiltonian(ints);
  FermionOp h_eff = h.normal_ordered(spec);

  DownfoldResult result;
  if (options.commutator_order >= 1) {
    const FermionOp sigma =
        external_sigma(ints, space, options.amplitude_threshold);
    result.sigma_terms = sigma.size();
    if (!sigma.empty()) {
      // [H, sigma], rank-truncated against the HF reference.
      FermionOp c1 = h.commutator(sigma, spec);
      h_eff += c1;
      if (options.commutator_order >= 2) {
        // 1/2 [[H, sigma], sigma] using the already-truncated inner
        // commutator (standard nested-truncation scheme).
        FermionOp c2 = c1.commutator(sigma, spec);
        c2 *= 0.5;
        h_eff += c2;
      }
    }
  }
  h_eff = h_eff.normal_ordered(spec);

  result.h_eff = confine_to_active(h_eff, space);
  result.n_active_electrons = ints.nelec - 2 * space.n_frozen;
  result.n_active_spin_orbitals = 2 * space.n_active;
  return result;
}

}  // namespace vqsim
