#include "api/workflow.hpp"

#include <gtest/gtest.h>

#include "chem/molecules.hpp"

namespace vqsim {
namespace {

TEST(Workflow, H2VqeEndToEnd) {
  WorkflowConfig config;
  config.molecule = h2_sto3g();
  config.algorithm = WorkflowAlgorithm::kVqe;
  const WorkflowReport report = run_workflow(config);

  EXPECT_EQ(report.qubits, 4);
  EXPECT_EQ(report.electrons, 2);
  EXPECT_EQ(report.pauli_terms, 15u);
  EXPECT_LT(report.measurement_groups, report.pauli_terms);
  ASSERT_TRUE(report.fci_energy.has_value());
  EXPECT_NEAR(report.energy, *report.fci_energy, 1e-6);
  EXPECT_LT(report.energy, report.hf_energy - 1e-3);
  ASSERT_TRUE(report.vqe.has_value());
  EXPECT_GT(report.vqe->cost_model.non_caching_gates(),
            report.vqe->cost_model.caching_gates());
}

TEST(Workflow, DownfoldedAdaptVqe) {
  WorkflowConfig config;
  config.molecule = water_like(6, 6);
  config.active = ActiveSpace{1, 4};  // 8 qubits
  config.algorithm = WorkflowAlgorithm::kAdaptVqe;
  config.adapt.max_operators = 15;
  config.adapt.inner.iterations = 250;
  config.adapt.reference_target = kChemicalAccuracy;
  const WorkflowReport report = run_workflow(config);

  EXPECT_EQ(report.qubits, 8);
  EXPECT_EQ(report.electrons, 4);
  ASSERT_TRUE(report.fci_energy.has_value());
  ASSERT_TRUE(report.adapt.has_value());
  EXPECT_NEAR(report.energy, *report.fci_energy, kChemicalAccuracy);
  EXPECT_FALSE(report.adapt->iterations.empty());
}

TEST(Workflow, H2Qpe) {
  WorkflowConfig config;
  config.molecule = h2_sto3g();
  config.algorithm = WorkflowAlgorithm::kQpe;
  config.qpe.ancilla_qubits = 6;
  config.qpe.time = 4.0;
  config.qpe.trotter = {.steps = 4, .order = 2};
  const WorkflowReport report = run_workflow(config);

  ASSERT_TRUE(report.qpe.has_value());
  ASSERT_TRUE(report.fci_energy.has_value());
  // QPE resolves E within a couple of grid cells; the HF-dominated peak may
  // also land on the HF energy, which is within a few resolution cells here.
  const double resolution =
      2.0 * kPi / (config.qpe.time * (1 << config.qpe.ancilla_qubits));
  EXPECT_NEAR(report.energy, *report.fci_energy, 4.0 * resolution);
}

TEST(Workflow, SkipsFciWhenDisabled) {
  WorkflowConfig config;
  config.molecule = h2_sto3g();
  config.compute_fci_reference = false;
  config.vqe.nelder_mead.max_evaluations = 50;
  const WorkflowReport report = run_workflow(config);
  EXPECT_FALSE(report.fci_energy.has_value());
}

}  // namespace
}  // namespace vqsim
