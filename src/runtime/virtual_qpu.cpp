#include "runtime/virtual_qpu.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "analyze/properties.hpp"
#include "analyze/verifier.hpp"
#include "common/parallel.hpp"
#include "dist/comm.hpp"
#include "resilience/fault_injection.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace vqsim::runtime {
namespace {

double seconds_since(std::chrono::steady_clock::time_point start,
                     std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

std::string describe(const JobRequirements& req) {
  std::string s = std::to_string(req.num_qubits) + " qubits";
  if (req.needs_noise) s += ", noise";
  if (req.needs_exact) s += ", exact";
  if (req.needs_state) s += ", statevector output";
  if (req.clifford_only) s += ", clifford";
  if (req.needs_batch) s += ", batched execution";
  return s;
}

}  // namespace

VirtualQpuPool::VirtualQpuPool(std::vector<std::unique_ptr<QpuBackend>> qpus,
                               int workers)
    : pool_(workers) {
  if (qpus.empty())
    throw std::invalid_argument("VirtualQpuPool: empty QPU fleet");
  qpus_.reserve(qpus.size());
  for (auto& backend : qpus) {
    if (!backend)
      throw std::invalid_argument("VirtualQpuPool: null backend");
    VirtualQpu q;
    q.caps = backend->caps();
    q.backend = std::move(backend);
    // Per-backend health gauges, resolved once (the registry's references
    // are stable); the id is part of the name so identical fleet members
    // (make_statevector_pool) get distinct series.
    const std::string prefix = "pool.backend." +
                               std::to_string(qpus_.size()) + "." +
                               q.backend->name() + ".";
    q.breaker_state_gauge =
        &telemetry::MetricsRegistry::global().gauge(prefix + "breaker_state");
    q.degraded_gauge =
        &telemetry::MetricsRegistry::global().gauge(prefix + "degraded");
    q.breaker_state_gauge->set(0);
    q.degraded_gauge->set(0);
    qpus_.push_back(std::move(q));
  }
  timer_ = std::thread([this] { timer_loop(); });
}

VirtualQpuPool::~VirtualQpuPool() { shutdown(); }

void VirtualQpuPool::shutdown() {
  {
    MutexLock lock(mutex_);
    paused_ = false;
    shutdown_ = true;
    pump_locked(Clock::now());
  }
  all_done_cv_.notify_all();
  wait_all();
  {
    MutexLock lock(mutex_);
    timer_stop_ = true;
  }
  timer_cv_.notify_all();
  if (timer_.joinable()) timer_.join();
  pool_.shutdown();
}

std::vector<analyze::Diagnostic> VirtualQpuPool::verify_submission(
    const Circuit& circuit, const JobOptions& options, JobKind kind) const {
  analyze::VerifyOptions verify_options;
  verify_options.clifford_promised = options.clifford_only;
  std::vector<analyze::Diagnostic> diagnostics =
      analyze::verify_circuit(circuit, verify_options);
  if (analyze::has_errors(diagnostics))
    throw analyze::VerificationError(
        std::string("VirtualQpuPool: ") + to_string(kind) +
            " job rejected at submission: circuit failed static verification",
        std::move(diagnostics));
  return diagnostics;  // warnings/notes only; attached to telemetry
}

VirtualQpuPool::RoutingInfo VirtualQpuPool::infer_routing(
    const Circuit& circuit, JobRequirements& requirements,
    std::vector<analyze::Diagnostic>& warnings) const {
  RoutingInfo routing;
  // Structural passes only: the O(n^2) cancellation/light-cone dataflow
  // stays out of the submission hot path, and lint findings already came
  // from verify_submission (energy jobs skip lint entirely by design).
  analyze::PropertyOptions popts;
  popts.dataflow = false;
  popts.lint = false;
  const analyze::CircuitProperties props =
      analyze::infer_properties(circuit, popts);

  // Auto-Clifford routing: an inferred all-Clifford circuit unlocks the
  // stabilizer backend without a caller clifford_only promise.
  if (props.all_clifford && props.num_gates > 0 &&
      !requirements.clifford_only) {
    requirements.clifford_only = true;
    routing.auto_clifford = true;
    for (const analyze::Diagnostic& d : props.diagnostics)
      if (d.code == analyze::DiagCode::kAutoCliffordRoutable)
        warnings.push_back(d);
  }

  // Price the job on every capable backend (+inf where it cannot run).
  // estimate_cost is const/pure, so reading it off an executing backend is
  // safe; caps are cached at construction.
  routing.backend_cost.assign(qpus_.size(),
                              std::numeric_limits<double>::infinity());
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t q = 0; q < qpus_.size(); ++q) {
    if (!backend_can_run(qpus_[q].caps, requirements)) continue;
    routing.backend_cost[q] =
        qpus_[q]
            .backend->estimate_cost(circuit, props, requirements.num_qubits)
            .cost;
    best = std::min(best, routing.backend_cost[q]);
  }
  if (std::isfinite(best)) routing.estimated_cost = best;
  return routing;
}

void VirtualQpuPool::enqueue(
    JobKind kind, JobRequirements requirements, JobOptions options,
    std::vector<analyze::Diagnostic> warnings, RoutingInfo routing,
    std::function<std::exception_ptr(QpuBackend&)> execute,
    std::function<void(std::exception_ptr)> fail, int batch_size) {
  bool feasible = false;
  for (const VirtualQpu& q : qpus_)
    if (backend_can_run(q.caps, requirements)) {
      feasible = true;
      break;
    }
  if (!feasible) {
    // Structured rejection: the summary error keeps the original message
    // shape; one note per backend explains which capability failed, so
    // callers can distinguish over-capacity from a Clifford/noise mismatch.
    analyze::DiagnosticCollector diagnostics;
    diagnostics.error(
        analyze::DiagCode::kNoCapableBackend, -1, -1,
        std::string("no backend in the fleet can run this ") +
            to_string(kind) + " job (requires " + describe(requirements) +
            "); rejected at submission");
    const analyze::JobDemands demands = to_analyze_demands(requirements);
    for (const VirtualQpu& q : qpus_)
      analyze::check_backend_compatibility(
          demands, to_analyze_target(q.caps, q.backend->name()), diagnostics,
          analyze::Severity::kNote);
    throw analyze::VerificationError(
        std::string("VirtualQpuPool: [") +
            analyze::to_string(analyze::DiagCode::kNoCapableBackend) +
            "] no backend in the fleet can run this " + to_string(kind) +
            " job (requires " + describe(requirements) +
            "); rejected at submission",
        diagnostics.take());
  }

  MutexLock lock(mutex_);
  if (shutdown_)
    throw std::runtime_error(
        "VirtualQpuPool: submission after shutdown() was rejected");
  PendingJob job;
  job.id = next_job_id_++;
  job.kind = kind;
  job.priority = options.priority;
  job.requirements = requirements;
  job.execute = std::move(execute);
  job.fail = std::move(fail);
  job.submit_time = Clock::now();
  job.not_before = job.submit_time;
  if (options.deadline.count() > 0)
    job.deadline = job.submit_time + options.deadline;
  job.retry = options.retry;
  job.warnings = std::move(warnings);
  job.backend_cost = std::move(routing.backend_cost);
  job.estimated_cost = routing.estimated_cost;
  job.auto_clifford = routing.auto_clifford;
  job.batch_size = batch_size;
  if (kind == JobKind::kBatch) {
    VQSIM_COUNTER(c_batch_jobs, "pool.batch_jobs_total");
    VQSIM_COUNTER_INC(c_batch_jobs);
    VQSIM_COUNTER(c_batch_items, "pool.batch_items_total");
    VQSIM_COUNTER_ADD(c_batch_items, static_cast<std::uint64_t>(batch_size));
  }
  pending_.push_back(std::move(job));
  ++counters_.jobs_submitted;
  counters_.queue_depth_high_water =
      std::max(counters_.queue_depth_high_water, pending_.size());
  VQSIM_COUNTER(c_submitted, "pool.jobs_submitted_total");
  VQSIM_COUNTER_INC(c_submitted);
  VQSIM_GAUGE(g_depth, "pool.queue_depth");
  VQSIM_GAUGE_SET(g_depth, static_cast<std::int64_t>(pending_.size()));
  pump_locked(Clock::now());
}

void VirtualQpuPool::refresh_backend_gauges_locked(std::size_t q,
                                                   Clock::time_point now) {
  const resilience::BreakerState state = qpus_[q].breaker.state(now);
  if (qpus_[q].breaker_state_gauge)
    qpus_[q].breaker_state_gauge->set(static_cast<std::int64_t>(state));
  if (qpus_[q].degraded_gauge)
    qpus_[q].degraded_gauge->set(
        state == resilience::BreakerState::kOpen ? 1 : 0);
}

void VirtualQpuPool::finish_failed_locked(PendingJob job, int backend_id,
                                          std::exception_ptr error,
                                          double exec_seconds,
                                          bool deadline_hit) {
  JobTelemetry record;
  record.job_id = job.id;
  record.kind = job.kind;
  record.priority = job.priority;
  record.backend_id = backend_id;
  if (backend_id >= 0)
    record.backend_name =
        qpus_[static_cast<std::size_t>(backend_id)].backend->name();
  record.queue_wait_seconds =
      job.first_dispatch_wait_seconds >= 0.0
          ? job.first_dispatch_wait_seconds
          : seconds_since(job.submit_time, Clock::now());
  record.execution_seconds = job.prior_execution_seconds + exec_seconds;
  record.failed = true;
  record.attempts = job.attempts;
  record.backend_history = std::move(job.backend_history);
  record.error_message = deadline_hit
                             ? resilience::describe_error(error)
                             : job.last_error;
  record.deadline_exceeded = deadline_hit;
  record.warnings = std::move(job.warnings);
  record.estimated_cost = job.estimated_cost;
  record.auto_clifford = job.auto_clifford;
  record.batch_size = job.batch_size;

  ++counters_.jobs_completed;
  ++counters_.jobs_failed;
  if (deadline_hit) ++counters_.deadline_exceeded;
  counters_.total_queue_wait_seconds += record.queue_wait_seconds;
  counters_.total_execution_seconds += record.execution_seconds;

  VQSIM_COUNTER(c_completed, "pool.jobs_completed_total");
  VQSIM_COUNTER_INC(c_completed);
  VQSIM_COUNTER(c_failed, "pool.jobs_failed_total");
  VQSIM_COUNTER_INC(c_failed);
  if (deadline_hit) {
    VQSIM_COUNTER(c_deadline, "pool.deadline_exceeded_total");
    VQSIM_COUNTER_INC(c_deadline);
  }
  VQSIM_HISTOGRAM(h_wait, "pool.queue_wait_seconds");
  VQSIM_HISTOGRAM_OBSERVE(h_wait, record.queue_wait_seconds);

  telemetry_.push_back(std::move(record));
  job.fail(error);
}

void VirtualQpuPool::pump_locked(Clock::time_point now) {
  // Cooperative deadline enforcement for queued jobs: an expired job never
  // reaches a backend; its future receives DeadlineExceeded.
  for (std::size_t j = 0; j < pending_.size();) {
    if (pending_[j].deadline <= now) {
      PendingJob job = std::move(pending_[j]);
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(j));
      auto error = std::make_exception_ptr(resilience::DeadlineExceeded(
          "VirtualQpuPool: job " + std::to_string(job.id) +
          " deadline exceeded" +
          (job.last_error.empty() ? std::string()
                                  : "; last error: " + job.last_error)));
      finish_failed_locked(std::move(job), -1, std::move(error), 0.0,
                           /*deadline_hit=*/true);
    } else {
      ++j;
    }
  }
  if (paused_) {
    // No dispatch while paused, but queued jobs still carry deadlines the
    // timer thread must arm. Skipping this notify loses the wakeup when a
    // deadline job is enqueued while the timer sits in an untimed wait
    // (its last pump predates the job), and the deadline never fires.
    timer_cv_.notify_all();
    return;
  }

  for (;;) {
    // Highest-priority (lowest enum value), earliest-submitted job that is
    // past its backoff gate and has an idle capable QPU admitted by its
    // breaker right now. Jobs whose capable QPUs are all busy/quarantined
    // are skipped, so a small job may overtake a blocked big one without
    // starving it (its turn recurs on every completion).
    const auto pick_backend = [&](const PendingJob& job) {
      // Cost-aware routing: among the idle capable breaker-admitted QPUs,
      // the cheapest predicted backend wins (strict < keeps the first
      // fleet index on ties, so identical fleets dispatch as before).
      // Retry attempts additionally prefer closed-breaker backends: a
      // half-open probe slot admits exactly one job, and spending a
      // retrying job on a just-sick backend risks its remaining attempts
      // when a known-healthy alternative is idle. Ranking is
      // lexicographic (failed-before, breaker-not-closed, cost), so a
      // probe-only fleet still retries.
      int best = -1, fallback = -1;
      double best_cost = std::numeric_limits<double>::infinity();
      double fallback_cost = std::numeric_limits<double>::infinity();
      bool best_probe = false, fallback_probe = false;
      const auto better = [](bool probe, double cost, int cur, bool cur_probe,
                             double cur_cost) {
        if (cur < 0) return true;
        if (probe != cur_probe) return !probe;
        return cost < cur_cost;
      };
      for (std::size_t q = 0; q < qpus_.size(); ++q) {
        if (qpus_[q].busy) continue;
        if (!backend_can_run(qpus_[q].caps, job.requirements)) continue;
        if (!qpus_[q].breaker.would_admit(now)) continue;
        const double cost =
            q < job.backend_cost.size() ? job.backend_cost[q] : 0.0;
        const bool probe =
            job.attempts > 0 && qpus_[q].breaker.state(now) !=
                                    resilience::BreakerState::kClosed;
        const bool failed_before =
            std::find(job.backend_history.begin(), job.backend_history.end(),
                      static_cast<int>(q)) != job.backend_history.end();
        // Failover preference: a backend that has not failed this job yet
        // wins over one that has; the latter is kept as a fallback so a
        // single-backend fleet still retries.
        if (job.retry.failover && failed_before) {
          if (better(probe, cost, fallback, fallback_probe, fallback_cost)) {
            fallback = static_cast<int>(q);
            fallback_cost = cost;
            fallback_probe = probe;
          }
        } else if (better(probe, cost, best, best_probe, best_cost)) {
          best = static_cast<int>(q);
          best_cost = cost;
          best_probe = probe;
        }
      }
      return best >= 0 ? best : fallback;
    };

    std::size_t best = pending_.size();
    int best_qpu = -1;
    for (std::size_t j = 0; j < pending_.size(); ++j) {
      if (pending_[j].not_before > now) continue;  // backing off
      if (best < pending_.size() &&
          pending_[j].priority >= pending_[best].priority)
        continue;
      const int qpu = pick_backend(pending_[j]);
      if (qpu < 0) continue;
      best = j;
      best_qpu = qpu;
    }
    if (best_qpu < 0) break;

    PendingJob job = std::move(pending_[best]);
    pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(best));
    qpus_[static_cast<std::size_t>(best_qpu)].busy = true;
    qpus_[static_cast<std::size_t>(best_qpu)].breaker.acquire(now);
    if (job.first_dispatch_wait_seconds < 0.0)
      job.first_dispatch_wait_seconds = seconds_since(job.submit_time, now);
    ++in_flight_;
    VQSIM_GAUGE(g_depth, "pool.queue_depth");
    VQSIM_GAUGE_SET(g_depth, static_cast<std::int64_t>(pending_.size()));
    pool_.submit([this, job = std::move(job), best_qpu]() mutable {
      run_job(std::move(job), best_qpu);
    });
  }
  // Backoff expiries, breaker reopen probes, and queued-job deadlines are
  // timer events; recompute the wakeup whenever the queue changed.
  timer_cv_.notify_all();
}

void VirtualQpuPool::run_job(PendingJob job, int backend_id) {
  VirtualQpu& qpu = qpus_[static_cast<std::size_t>(backend_id)];
  const Clock::time_point start = Clock::now();
  std::exception_ptr error;
  {
    VQSIM_SPAN_NAMED(span, "runtime", "job_execute");
    if (span.active())
      span.set_args(std::string("{\"kind\":\"") + to_string(job.kind) +
                    "\",\"backend\":\"" + qpu.backend->name() + "\",\"id\":" +
                    std::to_string(job.id) + ",\"attempt\":" +
                    std::to_string(job.attempts + 1) + "}");
    try {
      // The injector's "qpu.execute" site makes any backend fail or stall
      // on demand (detail = backend id); disarmed cost is one relaxed load.
      resilience::FaultInjector::instance().check("qpu.execute", backend_id);
      error = job.execute(*qpu.backend);
    } catch (...) {
      error = std::current_exception();
    }
  }
  const Clock::time_point end = Clock::now();
  const double exec_seconds = seconds_since(start, end);
  ++job.attempts;

  VQSIM_HISTOGRAM(h_exec, "pool.execute_seconds");
  VQSIM_HISTOGRAM_OBSERVE(h_exec, exec_seconds);

  {
    MutexLock lock(mutex_);
    qpu.busy = false;
    ++qpu.jobs_run;
    qpu.busy_seconds += exec_seconds;
    --in_flight_;

    if (!error) {
      qpu.breaker.on_success();
      refresh_backend_gauges_locked(static_cast<std::size_t>(backend_id), end);

      JobTelemetry record;
      record.job_id = job.id;
      record.kind = job.kind;
      record.priority = job.priority;
      record.backend_id = backend_id;
      record.backend_name = qpu.backend->name();
      record.queue_wait_seconds = job.first_dispatch_wait_seconds;
      record.execution_seconds = job.prior_execution_seconds + exec_seconds;
      record.failed = false;
      record.attempts = job.attempts;
      record.backend_history = std::move(job.backend_history);
      record.error_message = std::move(job.last_error);
      record.warnings = std::move(job.warnings);
      record.estimated_cost = job.estimated_cost;
      record.auto_clifford = job.auto_clifford;
      record.batch_size = job.batch_size;
      // Recovery attribution: in-backend checkpoint replay is reported by
      // the backend itself; completing on a different backend after a
      // CommFailure is the pool's degraded-mode failover.
      const RecoveryInfo recovery = qpu.backend->last_recovery();
      record.recovery_path = recovery.path;
      record.replayed_gates = recovery.replayed_gates;
      if (job.comm_failure_seen && backend_id != job.comm_failure_backend) {
        record.recovery_path = "failover";
        ++counters_.degraded_failovers;
        VQSIM_COUNTER(c_failovers, "runtime.degraded_failovers");
        VQSIM_COUNTER_INC(c_failovers);
      }

      ++counters_.jobs_completed;
      if (job.attempts > 1) ++counters_.jobs_recovered;
      counters_.total_queue_wait_seconds += record.queue_wait_seconds;
      counters_.total_execution_seconds += record.execution_seconds;
      VQSIM_COUNTER(c_completed, "pool.jobs_completed_total");
      VQSIM_COUNTER_INC(c_completed);
      VQSIM_HISTOGRAM(h_wait, "pool.queue_wait_seconds");
      VQSIM_HISTOGRAM_OBSERVE(h_wait, record.queue_wait_seconds);
      telemetry_.push_back(std::move(record));
      pump_locked(end);
    } else {
      job.last_error = resilience::describe_error(error);
      job.prior_execution_seconds += exec_seconds;
      // A CommFailure means the backend's communicator lost a rank or
      // missed a deadline and its own checkpoint replay gave up: trip the
      // breaker immediately (consecutive-failure counting is too slow for
      // a dead rank) so retries land on healthy capacity — degraded mode.
      bool comm_failure = false;
      try {
        std::rethrow_exception(error);
      } catch (const CommFailure&) {
        comm_failure = true;
      } catch (...) {
      }
      if (comm_failure) {
        job.comm_failure_seen = true;
        job.comm_failure_backend = backend_id;
      }
      const bool breaker_opened =
          comm_failure ? qpu.breaker.trip(end) : qpu.breaker.on_failure(end);
      if (breaker_opened) {
        ++counters_.breaker_open_events;
        VQSIM_COUNTER(c_breaker, "pool.breaker_open_total");
        VQSIM_COUNTER_INC(c_breaker);
      }
      refresh_backend_gauges_locked(static_cast<std::size_t>(backend_id), end);
      std::int64_t open_now = 0;
      for (const VirtualQpu& q : qpus_)
        if (q.breaker.state(end) == resilience::BreakerState::kOpen)
          ++open_now;
      VQSIM_GAUGE(g_open, "pool.breakers_open");
      VQSIM_GAUGE_SET(g_open, open_now);

      const bool retryable = resilience::is_retryable(error);
      const bool attempts_left = job.attempts < job.retry.max_attempts;
      const auto backoff =
          resilience::backoff_delay(job.retry, job.attempts, job.id);
      const Clock::time_point resume_at = end + backoff;
      if (retryable && attempts_left && resume_at < job.deadline) {
        job.backend_history.push_back(backend_id);
        job.not_before = resume_at;
        ++counters_.jobs_retried;
        VQSIM_COUNTER(c_retries, "pool.retries_total");
        VQSIM_COUNTER_INC(c_retries);
        pending_.push_back(std::move(job));
        pump_locked(end);  // another admitted backend may be idle already
      } else if (retryable && attempts_left) {
        // The backoff would overrun the deadline: expire now instead of
        // burning a doomed attempt.
        auto deadline_error =
            std::make_exception_ptr(resilience::DeadlineExceeded(
                "VirtualQpuPool: job " + std::to_string(job.id) +
                " deadline exceeded after " + std::to_string(job.attempts) +
                " attempt(s); last error: " + job.last_error));
        finish_failed_locked(std::move(job), backend_id,
                             std::move(deadline_error), 0.0,
                             /*deadline_hit=*/true);
        pump_locked(end);
      } else {
        finish_failed_locked(std::move(job), backend_id, error, 0.0,
                             /*deadline_hit=*/false);
        pump_locked(end);
      }
    }
  }
  all_done_cv_.notify_all();
}

// The wait predicates read guarded members through a std::unique_lock the
// analysis cannot follow; the lock IS held whenever the predicates run.
void VirtualQpuPool::timer_loop() VQSIM_NO_THREAD_SAFETY_ANALYSIS {
  std::unique_lock<Mutex> lock(mutex_);
  while (!timer_stop_) {
    // Pump and compute the next wakeup from the SAME time snapshot. The
    // wakeup only keeps events strictly after `now` (a due event the pump
    // could not dispatch is blocked on a busy backend or an in-flight
    // probe, and the completion pump covers those) — so an event that
    // lands between this snapshot and the wait must still count as
    // "future". Taking a second, fresher Clock::now() here would silently
    // drop such an event and sleep forever on it (lost-wakeup race; with
    // microsecond retry backoffs the window is hit in practice).
    const Clock::time_point now = Clock::now();
    pump_locked(now);
    all_done_cv_.notify_all();  // pump may have expired queued jobs
    const Clock::time_point next = next_timer_event_locked(now);
    if (next == Clock::time_point::max())
      timer_cv_.wait(lock);
    else
      timer_cv_.wait_until(lock, next);
  }
}

VirtualQpuPool::Clock::time_point VirtualQpuPool::next_timer_event_locked(
    Clock::time_point now) const {
  Clock::time_point next = Clock::time_point::max();
  const auto consider = [&](Clock::time_point t) {
    if (t > now && t < next) next = t;
  };
  for (const PendingJob& job : pending_) {
    consider(job.not_before);
    consider(job.deadline);
  }
  if (!pending_.empty())
    for (const VirtualQpu& q : qpus_)
      if (q.breaker.state(now) == resilience::BreakerState::kOpen)
        consider(q.breaker.open_until());
  return next;
}

std::future<double> VirtualQpuPool::submit_energy(const Ansatz& ansatz,
                                                  const PauliSum& observable,
                                                  std::vector<double> theta,
                                                  JobOptions options) {
  JobRequirements req;
  req.num_qubits = ansatz.num_qubits();
  req.needs_noise = false;
  req.needs_exact = true;
  req.clifford_only = options.clifford_only;
  // Materialize the bound circuit once for property inference (auto-Clifford
  // detection + per-backend pricing). Execution still calls
  // backend.energy(), so energies stay bit-identical to the sequential
  // executor; energy jobs deliberately skip the static verifier so
  // execution-time errors keep arriving through the future.
  std::vector<analyze::Diagnostic> warnings;
  RoutingInfo routing = infer_routing(ansatz.circuit(theta), req, warnings);
  auto promise = std::make_shared<std::promise<double>>();
  std::future<double> future = promise->get_future();
  enqueue(JobKind::kEnergy, req, options, std::move(warnings),
          std::move(routing),
          [promise, &ansatz, &observable, theta = std::move(theta)](
              QpuBackend& backend) -> std::exception_ptr {
            try {
              promise->set_value(backend.energy(ansatz, observable, theta));
              return nullptr;
            } catch (...) {
              return std::current_exception();
            }
          },
          [promise](std::exception_ptr error) {
            promise->set_exception(std::move(error));
          });
  return future;
}

bool VirtualQpuPool::supports_batch() const {
  // caps are cached at construction and the fleet vector is fixed, so this
  // needs no lock.
  for (const VirtualQpu& q : qpus_)
    if (q.caps.supports_batch) return true;
  return false;
}

std::vector<std::future<double>> VirtualQpuPool::submit_energy_batch(
    const Ansatz& ansatz, const PauliSum& observable,
    std::vector<std::vector<double>> thetas, JobOptions options) {
  std::vector<std::future<double>> futures;
  if (thetas.empty()) return futures;
  futures.reserve(thetas.size());
  if (!supports_batch()) {
    // Per-item fallback: same futures, per-item scheduling/telemetry.
    for (std::vector<double>& theta : thetas)
      futures.push_back(
          submit_energy(ansatz, observable, std::move(theta), options));
    return futures;
  }
  JobRequirements req;
  req.num_qubits = ansatz.num_qubits();
  req.needs_noise = false;
  req.needs_exact = true;
  req.needs_batch = true;
  req.clifford_only = options.clifford_only;
  // Route on the first binding's circuit. needs_batch is set before
  // inference, so pricing only considers batch-capable backends.
  std::vector<analyze::Diagnostic> warnings;
  RoutingInfo routing = infer_routing(ansatz.circuit(thetas[0]), req, warnings);
  // Auto-Clifford inference saw only item 0; the remaining bindings may
  // rotate off the Clifford frame, so the promise must not stand for the
  // whole batch. (Routing is unaffected: needs_batch already excludes the
  // stabilizer backend.)
  if (routing.auto_clifford) {
    req.clifford_only = options.clifford_only;
    routing.auto_clifford = false;
  }
  // One dispatch covers K items: scale the per-backend cost estimates so
  // queue-cost backpressure and telemetry see the real work.
  const double scale = static_cast<double>(thetas.size());
  for (double& cost : routing.backend_cost)
    if (std::isfinite(cost)) cost *= scale;
  routing.estimated_cost *= scale;

  const std::size_t batch = thetas.size();
  auto promises =
      std::make_shared<std::vector<std::promise<double>>>(batch);
  for (std::promise<double>& p : *promises)
    futures.push_back(p.get_future());
  enqueue(
      JobKind::kBatch, req, options, std::move(warnings), std::move(routing),
      [promises, &ansatz, &observable,
       thetas = std::move(thetas)](QpuBackend& backend) -> std::exception_ptr {
        // All-or-nothing: compute every energy first, then settle all K
        // promises. A throw before settlement leaves every promise
        // untouched, so the pool can retry the whole batch safely.
        try {
          const std::vector<double> energies =
              backend.energy_batch(ansatz, observable, thetas);
          if (energies.size() != thetas.size())
            throw std::logic_error(
                "energy_batch returned a result count different from the "
                "submitted parameter-set count");
          for (std::size_t k = 0; k < energies.size(); ++k)
            (*promises)[k].set_value(energies[k]);
          return nullptr;
        } catch (...) {
          return std::current_exception();
        }
      },
      [promises](std::exception_ptr error) {
        for (std::promise<double>& p : *promises) p.set_exception(error);
      },
      static_cast<int>(batch));
  return futures;
}

std::future<double> VirtualQpuPool::submit_expectation(Circuit circuit,
                                                       PauliSum observable,
                                                       JobOptions options) {
  JobRequirements req;
  req.num_qubits = circuit.num_qubits();
  req.needs_noise = !options.noise.is_noiseless();
  req.needs_exact = true;
  req.clifford_only = options.clifford_only;
  std::vector<analyze::Diagnostic> warnings =
      verify_submission(circuit, options, JobKind::kExpectation);
  RoutingInfo routing = infer_routing(circuit, req, warnings);
  auto promise = std::make_shared<std::promise<double>>();
  std::future<double> future = promise->get_future();
  enqueue(JobKind::kExpectation, req, options, std::move(warnings),
          std::move(routing),
          [promise, circuit = std::move(circuit),
           observable = std::move(observable),
           noise = options.noise](QpuBackend& backend) -> std::exception_ptr {
            try {
              promise->set_value(
                  backend.expectation(circuit, observable, noise));
              return nullptr;
            } catch (...) {
              return std::current_exception();
            }
          },
          [promise](std::exception_ptr error) {
            promise->set_exception(std::move(error));
          });
  return future;
}

std::future<StateVector> VirtualQpuPool::submit_circuit(Circuit circuit,
                                                        JobOptions options) {
  JobRequirements req;
  req.num_qubits = circuit.num_qubits();
  req.needs_noise = !options.noise.is_noiseless();
  req.needs_exact = true;
  req.needs_state = true;
  req.clifford_only = options.clifford_only;
  std::vector<analyze::Diagnostic> warnings =
      verify_submission(circuit, options, JobKind::kCircuitRun);
  RoutingInfo routing = infer_routing(circuit, req, warnings);
  auto promise = std::make_shared<std::promise<StateVector>>();
  std::future<StateVector> future = promise->get_future();
  enqueue(JobKind::kCircuitRun, req, options, std::move(warnings),
          std::move(routing),
          [promise,
           circuit = std::move(circuit)](QpuBackend& backend)
              -> std::exception_ptr {
            try {
              promise->set_value(backend.run_circuit(circuit));
              return nullptr;
            } catch (...) {
              return std::current_exception();
            }
          },
          [promise](std::exception_ptr error) {
            promise->set_exception(std::move(error));
          });
  return future;
}

void VirtualQpuPool::pause_dispatch() {
  MutexLock lock(mutex_);
  paused_ = true;
}

void VirtualQpuPool::resume_dispatch() {
  MutexLock lock(mutex_);
  paused_ = false;
  pump_locked(Clock::now());
}

// The wait predicate reads guarded members through a std::unique_lock the
// analysis cannot follow; the lock IS held whenever the predicate runs.
void VirtualQpuPool::wait_all() VQSIM_NO_THREAD_SAFETY_ANALYSIS {
  std::unique_lock<Mutex> lock(mutex_);
  all_done_cv_.wait(lock, [this] {
    return pending_.empty() && in_flight_ == 0;
  });
}

void VirtualQpuPool::set_breaker_policy(
    resilience::CircuitBreakerPolicy policy) {
  MutexLock lock(mutex_);
  for (VirtualQpu& q : qpus_) q.breaker = resilience::CircuitBreaker(policy);
  const Clock::time_point now = Clock::now();
  for (std::size_t q = 0; q < qpus_.size(); ++q)
    refresh_backend_gauges_locked(q, now);
}

std::size_t VirtualQpuPool::queue_depth() const {
  MutexLock lock(mutex_);
  return pending_.size();
}

PoolCounters VirtualQpuPool::counters() const {
  MutexLock lock(mutex_);
  return counters_;
}

PoolStats VirtualQpuPool::stats() const {
  MutexLock lock(mutex_);
  const Clock::time_point now = Clock::now();
  PoolStats s;
  s.queue_depth = pending_.size();
  for (const PendingJob& job : pending_) s.queue_cost += job.estimated_cost;
  s.jobs_in_flight = in_flight_;
  s.counters = counters_;
  s.backends.reserve(qpus_.size());
  for (std::size_t i = 0; i < qpus_.size(); ++i) {
    BackendHealth h;
    h.backend_id = static_cast<int>(i);
    h.name = qpus_[i].backend->name();
    h.max_qubits = qpus_[i].caps.max_qubits;
    h.breaker = qpus_[i].breaker.state(now);
    h.consecutive_failures = qpus_[i].breaker.consecutive_failures();
    h.breaker_opens = qpus_[i].breaker.opens();
    h.degraded = h.breaker == resilience::BreakerState::kOpen;
    if (h.degraded) ++s.open_breakers;
    if (!qpus_[i].busy && !h.degraded) ++s.idle_backends;
    s.backends.push_back(std::move(h));
  }
  return s;
}

std::vector<BackendUtilization> VirtualQpuPool::utilization() const {
  MutexLock lock(mutex_);
  std::vector<BackendUtilization> out;
  out.reserve(qpus_.size());
  for (std::size_t i = 0; i < qpus_.size(); ++i) {
    BackendUtilization u;
    u.backend_id = static_cast<int>(i);
    u.name = qpus_[i].backend->name();
    u.jobs_run = qpus_[i].jobs_run;
    u.busy_seconds = qpus_[i].busy_seconds;
    out.push_back(std::move(u));
  }
  return out;
}

std::vector<BackendHealth> VirtualQpuPool::health() const {
  MutexLock lock(mutex_);
  const Clock::time_point now = Clock::now();
  std::vector<BackendHealth> out;
  out.reserve(qpus_.size());
  for (std::size_t i = 0; i < qpus_.size(); ++i) {
    BackendHealth h;
    h.backend_id = static_cast<int>(i);
    h.name = qpus_[i].backend->name();
    h.max_qubits = qpus_[i].caps.max_qubits;
    h.breaker = qpus_[i].breaker.state(now);
    h.consecutive_failures = qpus_[i].breaker.consecutive_failures();
    h.breaker_opens = qpus_[i].breaker.opens();
    h.degraded = h.breaker == resilience::BreakerState::kOpen;
    out.push_back(std::move(h));
  }
  return out;
}

std::vector<JobTelemetry> VirtualQpuPool::telemetry() const {
  MutexLock lock(mutex_);
  return telemetry_;
}

void VirtualQpuPool::clear_telemetry() {
  MutexLock lock(mutex_);
  telemetry_.clear();
}

VirtualQpuPool make_statevector_pool(int num_qpus, int workers,
                                     int max_qubits) {
  if (num_qpus <= 0)
    throw std::invalid_argument("make_statevector_pool: need >= 1 QPU");
  std::vector<std::unique_ptr<QpuBackend>> fleet;
  fleet.reserve(static_cast<std::size_t>(num_qpus));
  // One compiled-circuit cache across the fleet: whichever backend runs
  // the first batch job of a shape compiles the plan for all of them.
  auto compile_cache = std::make_shared<exec::CompiledCircuitCache>();
  for (int i = 0; i < num_qpus; ++i)
    fleet.push_back(
        std::make_unique<StateVectorBackend>(max_qubits, compile_cache));
  return VirtualQpuPool(std::move(fleet), workers);
}

VirtualQpuPool& default_qpu_pool() {
  // Intentionally immortal: joining worker threads during static
  // destruction is a classic shutdown hazard.
  static VirtualQpuPool* pool = [] {
    const int n = std::max(1, hardware_threads());
    return new VirtualQpuPool(
        [&] {
          std::vector<std::unique_ptr<QpuBackend>> fleet;
          fleet.reserve(static_cast<std::size_t>(n));
          auto compile_cache = std::make_shared<exec::CompiledCircuitCache>();
          for (int i = 0; i < n; ++i)
            fleet.push_back(
                std::make_unique<StateVectorBackend>(28, compile_cache));
          return fleet;
        }(),
        n);
  }();
  return *pool;
}

}  // namespace vqsim::runtime
