// Ablation: incremental optimization / warm starts (paper §6.2).
//
// Sweeps the H2 dissociation coordinate twice — cold starts (every point
// from the HF seed) vs warm starts (every point from the previous optimum)
// — and compares the total classical optimization cost at identical final
// energies.

#include <cstdio>
#include <vector>

#include "chem/jordan_wigner.hpp"
#include "chem/scf.hpp"
#include "common/timer.hpp"
#include "vqe/sweep.hpp"

int main() {
  using namespace vqsim;

  // H4 chain: 8 qubits, 26 UCCSD parameters — enough optimization surface
  // for the seed to matter.
  std::vector<double> bonds;
  for (double r = 1.6; r <= 2.21; r += 0.1) bonds.push_back(r);

  const UccsdAnsatzAdapter ansatz(8, 4);
  const ObservableFactory factory = [](double spacing) {
    return jordan_wigner(molecular_hamiltonian(
        molecule_from_atoms(h4_chain_geometry(spacing), 4)));
  };

  std::printf("# Warm-start ablation: H4 chain, %zu geometries\n",
              bonds.size());
  std::printf("%-8s %-14s %-12s %-10s\n", "mode", "evaluations",
              "max_dE_vs_cold", "wall_s");

  // Nelder-Mead cost scales with the initial simplex size relative to the
  // distance to the optimum; a warm seed justifies a much smaller simplex.
  SweepOptions cold;
  cold.vqe.nelder_mead.initial_step = 0.1;
  cold.warm_start = false;
  WallTimer t_cold;
  const SweepResult rc = run_vqe_sweep(ansatz, factory, bonds, cold);
  const double wall_cold = t_cold.seconds();

  SweepOptions warm;
  warm.vqe.nelder_mead.initial_step = 0.02;
  warm.warm_start = true;
  WallTimer t_warm;
  const SweepResult rw = run_vqe_sweep(ansatz, factory, bonds, warm);
  const double wall_warm = t_warm.seconds();

  double max_de = 0.0;
  for (std::size_t i = 0; i < bonds.size(); ++i)
    max_de = std::max(max_de, std::abs(rw.points[i].result.energy -
                                       rc.points[i].result.energy));

  std::printf("%-8s %-14zu %-12s %-10.2f\n", "cold", rc.total_evaluations,
              "-", wall_cold);
  std::printf("%-8s %-14zu %-12.2e %-10.2f\n", "warm", rw.total_evaluations,
              max_de, wall_warm);
  std::printf("# warm starts save %.0f%% of the energy evaluations\n",
              100.0 * (1.0 - static_cast<double>(rw.total_evaluations) /
                                 static_cast<double>(rc.total_evaluations)));
  return 0;
}
