// Fermion-to-qubit encodings beyond Jordan-Wigner.
//
// * Parity: qubit k stores the running parity p_k = n_0 ^ ... ^ n_k.
//   Occupation is read by two-qubit Z Z pairs instead of JW's O(n) Z
//   chains, while ladder operators carry an X chain *above* the mode:
//
//     a^dag_j = 1/2 X_{j+1..n-1} (Z_{j-1} X_j - i Y_j)      (Z_{-1} = I)
//
// * Bravyi-Kitaev: qubit i stores the parity of the Fenwick block
//   (i - lowbit(i), i] (1-indexed), balancing occupation readout and
//   parity computation at O(log n) support each:
//
//     a^dag_j = X_{U(j)} . (I + Z_{O(j)})/2 . Z_{P(j)}
//
//   with U(j) the Fenwick update path (blocks containing j), P(j) the
//   prefix decomposition of j-1 (parity of all modes below j), and O(j)
//   the symmetric difference of the prefix decompositions of j and j-1
//   (the blocks whose XOR is n_j). The single-qubit X.Z collisions on
//   qubit j resolve to Y through the Pauli algebra.
//
// Same operator content, different locality trade-offs. All encodings are
// verified by the canonical anticommutation relations, occupation-number
// eigenstates, and spectrum equality against the JW image.
#pragma once

#include "chem/fermion.hpp"
#include "pauli/pauli_sum.hpp"

namespace vqsim {

enum class FermionEncoding { kJordanWigner, kParity, kBravyiKitaev };

/// Image of one ladder operator over `num_modes` modes.
PauliSum encode_ladder(const LadderOp& op, int num_modes,
                       FermionEncoding encoding);

/// Image of an arbitrary fermion operator (simplified).
PauliSum encode(const FermionOp& op, FermionEncoding encoding);

/// The computational-basis state encoding the occupation `occupation_mask`
/// under `encoding` (JW: identical; parity: prefix parities).
std::uint64_t encode_occupation(std::uint64_t occupation_mask, int num_modes,
                                FermionEncoding encoding);

}  // namespace vqsim
