// Qubit-wise-commuting (QWC) measurement grouping.
//
// Terms that commute qubit-wise share a single measurement basis: one basis
// rotation serves the whole group. Grouping is what the cached-state executor
// iterates over (paper §4.1): per energy evaluation the ansatz runs once and
// each *group* costs one basis change, not each term.
#pragma once

#include <cstddef>
#include <vector>

#include "pauli/pauli_sum.hpp"

namespace vqsim {

struct MeasurementGroup {
  /// Indices into the originating PauliSum's terms().
  std::vector<std::size_t> term_indices;
  /// The merged basis: for every qubit some member measures, the axis all
  /// members agree on (I elsewhere).
  PauliString basis;
};

/// Greedy first-fit QWC grouping. The identity term (if present) is placed in
/// the first group it is compatible with (it is compatible with all).
std::vector<MeasurementGroup> group_qubitwise_commuting(const PauliSum& sum);

}  // namespace vqsim
