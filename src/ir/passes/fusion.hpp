// Gate fusion pass (paper §4.3).
//
// Fuses runs of consecutive gates acting on the same qubit (or same qubit
// pair) into single generic matrix gates, capped at two qubits: NWQ-Sim
// deliberately stops at 4x4 matrices because the cost of applying a fused
// k-qubit gate grows as 2^k per amplitude group, and 2-qubit fusion is the
// sweet spot on wide SIMT/SIMD hardware.
//
// Single-qubit gates adjacent to a two-qubit gate on one of its operands are
// absorbed into the two-qubit matrix. Groups whose accumulated matrix is the
// identity (e.g. a gate followed by its inverse) are dropped entirely.
#pragma once

#include "ir/circuit.hpp"

namespace vqsim {

struct FusionOptions {
  /// Emit the original gate unchanged when a fusion group contains exactly
  /// one gate (keeps mnemonics readable and avoids matrix churn).
  bool keep_singletons = true;
  /// Drop fusion groups equal to the identity to this tolerance.
  double identity_tolerance = 1e-12;
};

struct FusionStats {
  std::size_t gates_before = 0;
  std::size_t gates_after = 0;
  std::size_t groups_dropped_identity = 0;
  double reduction() const {
    return gates_before == 0
               ? 0.0
               : 1.0 - static_cast<double>(gates_after) /
                           static_cast<double>(gates_before);
  }
};

/// Fuse `circuit`; returns the semantically-equivalent fused circuit and
/// fills `stats` when non-null.
Circuit fuse_gates(const Circuit& circuit, const FusionOptions& options = {},
                   FusionStats* stats = nullptr);

}  // namespace vqsim
