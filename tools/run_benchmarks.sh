#!/usr/bin/env bash
# Benchmark harness: Release build, machine-readable results, determinism
# gate.
#
#   1. Configures + builds the bench targets in Release mode.
#   2. Runs the BENCH-protocol binaries (bench/bench_emit.hpp). Each drops a
#      BENCH_<suite>.json next to its stdout table; perf_virtual_qpu doubles
#      as the determinism gate — it exits non-zero if any worker-count cell
#      reproduces different energies, which aborts this script.
#   3. Runs perf_scaling's distributed comm-volume gate (naive vs
#      layout-scheduled traffic on a UCCSD circuit) and enforces the
#      scheduled-path amplitude budget on its BENCH rows.
#   4. Runs the google-benchmark perf_* binaries with JSON output.
#   5. Aggregates every BENCH_*.json into one BENCH_baseline.json keyed by
#      suite, for regression diffing across commits.
#
# Usage: tools/run_benchmarks.sh [--quick] [build-dir] [out-dir]
#   --quick     skip the slow targets (fig5_adapt_vqe, google-benchmark set)
#   build-dir   defaults to <repo>/build-bench
#   out-dir     defaults to <repo>/bench-results
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

quick=0
if [[ "${1:-}" == "--quick" ]]; then
  quick=1
  shift
fi
build_dir="${1:-${repo_root}/build-bench}"
out_dir="${2:-${repo_root}/bench-results}"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=Release \
  -DVQSIM_BUILD_BENCH=ON

bench_targets=(perf_virtual_qpu fig3_caching perf_analyze)
gbench_targets=(perf_fusion perf_expectation perf_caching)
if [[ "${quick}" == 0 ]]; then
  bench_targets+=(fig5_adapt_vqe)
fi
# perf_scaling, perf_serve, perf_batch, perf_chaos, and perf_gate_kernels
# build in both modes: their BENCH-protocol gates (comm volume; serve cache
# speedup/bit-identity/quota; batched-execution speedup/bit-identity/
# compile-once; rank-failure terminal-success/bit-identity/overhead;
# kernel-table speedup/bit-identity) are part of the regression surface
# even for --quick runs.
cmake --build "${build_dir}" -j --target "${bench_targets[@]}" perf_scaling \
  perf_serve perf_batch perf_chaos perf_gate_kernels \
  $([[ "${quick}" == 0 ]] && echo "${gbench_targets[@]}")

mkdir -p "${out_dir}"
export VQSIM_BENCH_DIR="${out_dir}"

# BENCH-protocol binaries. set -e turns perf_virtual_qpu's determinism /
# rejection failures and perf_analyze's inference-overhead gate (non-zero
# exit) into a harness failure.
for target in "${bench_targets[@]}"; do
  echo "== ${target}"
  "${build_dir}/bench/${target}" | tee "${out_dir}/${target}.log"
done

# Distributed comm-volume + determinism gate (perf_scaling owns its main):
# the BENCH section replays a 12-qubit UCCSD circuit under the naive and the
# layout-scheduled comm modes at 4/8 ranks, exiting non-zero (aborting this
# script) if either distributed state deviates from the single-rank
# reference by one bit, if LayoutStats disagrees with the measured
# CommStats, or if the scheduled path loses its >= 2x traffic edge. In
# --quick mode a never-matching filter skips its google-benchmark sweeps.
echo "== perf_scaling"
scaling_args=()
if [[ "${quick}" == 1 ]]; then
  scaling_args+=("--benchmark_filter=^\$")
else
  scaling_args+=("--benchmark_out=${out_dir}/GBENCH_perf_scaling.json"
                 "--benchmark_out_format=json")
fi
"${build_dir}/bench/perf_scaling" "${scaling_args[@]}" \
  | tee "${out_dir}/perf_scaling.log"

# Comm-volume budget: the scheduled path on that UCCSD circuit must keep
# comm.amplitudes_exchanged within budget (measured 114688 @ 4 ranks,
# 460800 @ 8 ranks; budgets leave ~15% headroom). A breach means a planner
# or layout change started paying exchanges it used to avoid.
declare -A comm_budget=([4]=131072 [8]=524288)
budget_rows=0
while read -r ranks amps; do
  budget="${comm_budget[${ranks}]:-}"
  [[ -z "${budget}" ]] && continue
  budget_rows=$((budget_rows + 1))
  if (( amps > budget )); then
    echo "FAIL: scheduled comm volume at ${ranks} ranks is ${amps}" \
         "amplitudes, over the ${budget} budget" >&2
    exit 1
  fi
  echo "comm budget OK at ${ranks} ranks: ${amps} <= ${budget} amplitudes"
done < <(sed -n 's/.*"ranks":\([0-9]*\),.*"amps_planned":\([0-9]*\),.*/\1 \2/p' \
           "${out_dir}/perf_scaling.log")
if (( budget_rows == 0 )); then
  echo "FAIL: no dist_comm BENCH rows found in perf_scaling output" >&2
  exit 1
fi

# Serve-layer load generator (perf_serve owns its main): Zipf(1.0) request
# mix through the multi-tenant service, cache off vs on. The binary exits
# non-zero — aborting this script via set -e — unless cache-on throughput
# is >= 5x cache-off, cached results are bit-identical to recomputation,
# and the closed loop finishes with zero tenant-quota violations. --quick
# trims the synthetic request count.
echo "== perf_serve"
serve_args=()
if [[ "${quick}" == 1 ]]; then
  serve_args+=(--requests 600)
fi
"${build_dir}/bench/perf_serve" ${serve_args[@]+"${serve_args[@]}"} \
  | tee "${out_dir}/perf_serve.log"

# Batched-execution PES scan (perf_batch owns its main): sequential vs
# compiled-scalar vs batched-K evaluation of the same pre-materialized
# circuit set. The binary exits non-zero — aborting this script via set -e
# — unless batched K=16 throughput is >= 2x sequential, every batched
# energy is bit-identical to the compiled scalar path, a rerun reproduces
# every bit, and the whole scan compiles its one ansatz shape exactly once.
echo "== perf_batch"
batch_args=()
if [[ "${quick}" == 1 ]]; then
  batch_args+=(--bonds 4 --evals 32)
fi
"${build_dir}/bench/perf_batch" ${batch_args[@]+"${batch_args[@]}"} \
  | tee "${out_dir}/perf_batch.log"

# Rank-failure chaos harness (perf_chaos owns its main): seeded stall /
# rank-death schedules against the distributed backend at 2/4/8 ranks, the
# deadline-vs-control ablation, and the pool's degraded-mode failover. The
# binary exits non-zero — aborting this script via set -e — unless every
# schedule ends in terminal success with energies bit-identical to the
# fault-free run inside the recovery-overhead bound, the un-deadlined
# control demonstrably hangs for the injected stall, and the failover job
# returns exact statevector amplitudes. --quick trims to 2/4 ranks and two
# seeds.
echo "== perf_chaos"
chaos_args=()
if [[ "${quick}" == 1 ]]; then
  chaos_args+=(--quick)
fi
"${build_dir}/bench/perf_chaos" ${chaos_args[@]+"${chaos_args[@]}"} \
  | tee "${out_dir}/perf_chaos.log"

# Gate-kernel table gate (perf_gate_kernels owns its main): the shared
# SIMD/generated kernel dispatch vs the seed's serial reference kernels,
# per gate kind at 12/16 qubits (BENCH suite "kernels"). The binary exits
# non-zero — aborting this script via set -e — unless the dense workhorse
# gates (h/cx/swap) clear >= 2x on the SIMD table (>= 1.05x scalar
# fallback), no kind drops below 0.7x, and every cell is bit-identical to
# the reference.
echo "== perf_gate_kernels"
"${build_dir}/bench/perf_gate_kernels" | tee "${out_dir}/perf_gate_kernels.log"

# google-benchmark microbenchmarks (JSON sidecar per binary).
if [[ "${quick}" == 0 ]]; then
  for target in "${gbench_targets[@]}"; do
    echo "== ${target}"
    "${build_dir}/bench/${target}" \
      --benchmark_out="${out_dir}/GBENCH_${target}.json" \
      --benchmark_out_format=json
  done
fi

# Aggregate the suite files into one object: {"suites":{"<name>":[rows]}}.
# Every BENCH_<suite>.json is a complete JSON array, so plain concatenation
# produces valid JSON without needing a JSON tool in the container.
baseline="${out_dir}/BENCH_baseline.json"
{
  printf '{"suites":{'
  first=1
  for f in "${out_dir}"/BENCH_*.json; do
    [[ "$(basename "$f")" == "BENCH_baseline.json" ]] && continue
    suite="$(basename "$f" .json)"
    suite="${suite#BENCH_}"
    [[ "${first}" == 0 ]] && printf ','
    first=0
    printf '"%s":' "${suite}"
    tr -d '\n' < "$f"
  done
  printf '}}\n'
} > "${baseline}"

echo "Benchmark results aggregated into ${baseline}"
