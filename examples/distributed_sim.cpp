// The distributed (SV-Sim role) backend: rank-partitioned simulation with
// explicit communication accounting.
//
//   $ ./distributed_sim
//
// Runs the same UCCSD circuit on the shared-memory simulator and on the
// simulated multi-rank backend at 2/4/8 ranks, checks bit-level agreement,
// and reports how the communication volume grows with the rank count —
// the knob the paper turns across Perlmutter nodes.

#include <cstdio>
#include <vector>

#include "chem/uccsd.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "dist/dist_state_vector.hpp"
#include "sim/expectation.hpp"

int main() {
  using namespace vqsim;

  const int nq = 12;
  const UccsdAnsatz ansatz(nq, 6);
  Rng rng(5);
  std::vector<double> theta(ansatz.num_parameters());
  for (double& t : theta) t = rng.uniform(-0.2, 0.2);
  const Circuit circuit = ansatz.circuit(theta);
  std::printf("workload: %d-qubit UCCSD ansatz, %zu gates\n", nq,
              circuit.size());

  WallTimer t0;
  StateVector reference(nq);
  reference.apply_circuit(circuit);
  std::printf("shared-memory backend: %.3f s\n", t0.seconds());

  std::printf("%-8s %-12s %-16s %-16s %-12s\n", "ranks", "local_q",
              "p2p_messages", "amps_exchanged", "fidelity");
  for (int ranks : {1, 2, 4, 8}) {
    SimComm comm(ranks);
    DistStateVector dist(nq, &comm);
    dist.apply_circuit(circuit);
    const StateVector gathered = dist.gather();
    std::printf("%-8d %-12d %-16llu %-16llu %-12.10f\n", ranks,
                dist.local_qubits(),
                static_cast<unsigned long long>(
                    comm.stats().point_to_point_messages),
                static_cast<unsigned long long>(
                    comm.stats().amplitudes_exchanged),
                reference.fidelity(gathered));
  }
  return 0;
}
