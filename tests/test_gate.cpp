#include "ir/gate.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/types.hpp"

namespace vqsim {
namespace {

Gate make(GateKind kind, int q0 = 0, int q1 = 1,
          std::array<double, 3> params = {0.3, 0.0, 0.0}) {
  Gate g;
  g.kind = kind;
  g.q0 = q0;
  g.q1 = gate_arity(kind) == 2 ? q1 : -1;
  g.params = params;
  return g;
}

const std::vector<GateKind> kAllOneQubit = {
    GateKind::kI,  GateKind::kX,   GateKind::kY,  GateKind::kZ,
    GateKind::kH,  GateKind::kS,   GateKind::kSdg, GateKind::kT,
    GateKind::kTdg, GateKind::kSX, GateKind::kSXdg, GateKind::kRX,
    GateKind::kRY, GateKind::kRZ,  GateKind::kP,  GateKind::kU3};

const std::vector<GateKind> kAllTwoQubit = {
    GateKind::kCX,  GateKind::kCY,  GateKind::kCZ,  GateKind::kCH,
    GateKind::kSwap, GateKind::kCRX, GateKind::kCRY, GateKind::kCRZ,
    GateKind::kCP,  GateKind::kRXX, GateKind::kRYY, GateKind::kRZZ};

class OneQubitGate : public ::testing::TestWithParam<GateKind> {};
class TwoQubitGate : public ::testing::TestWithParam<GateKind> {};

TEST_P(OneQubitGate, MatrixIsUnitary) {
  const Gate g = make(GetParam(), 0, 1, {0.7, -0.4, 1.3});
  EXPECT_TRUE(gate_matrix2(g).is_unitary()) << gate_name(GetParam());
}

TEST_P(OneQubitGate, InverseComposesToIdentity) {
  const Gate g = make(GetParam(), 0, 1, {0.7, -0.4, 1.3});
  const Gate inv = inverse_gate(g);
  EXPECT_TRUE((gate_matrix2(inv) * gate_matrix2(g))
                  .approx_equal(Mat2::identity(), 1e-12))
      << gate_name(GetParam());
}

TEST_P(OneQubitGate, Arity) { EXPECT_EQ(gate_arity(GetParam()), 1); }

TEST_P(TwoQubitGate, MatrixIsUnitary) {
  const Gate g = make(GetParam(), 0, 1, {0.7, 0.0, 0.0});
  EXPECT_TRUE(gate_matrix4(g).is_unitary()) << gate_name(GetParam());
}

TEST_P(TwoQubitGate, InverseComposesToIdentity) {
  const Gate g = make(GetParam(), 0, 1, {0.7, 0.0, 0.0});
  const Gate inv = inverse_gate(g);
  EXPECT_TRUE((gate_matrix4(inv) * gate_matrix4(g))
                  .approx_equal(Mat4::identity(), 1e-12))
      << gate_name(GetParam());
}

TEST_P(TwoQubitGate, Arity) { EXPECT_EQ(gate_arity(GetParam()), 2); }

INSTANTIATE_TEST_SUITE_P(AllGates, OneQubitGate,
                         ::testing::ValuesIn(kAllOneQubit));
INSTANTIATE_TEST_SUITE_P(AllGates, TwoQubitGate,
                         ::testing::ValuesIn(kAllTwoQubit));

TEST(GateMatrix, PauliAlgebra) {
  const Mat2 x = gate_matrix2(make(GateKind::kX));
  const Mat2 y = gate_matrix2(make(GateKind::kY));
  const Mat2 z = gate_matrix2(make(GateKind::kZ));
  // XY = iZ.
  EXPECT_TRUE((x * y).approx_equal(z * cplx{0.0, 1.0}, 1e-14));
  // HXH = Z.
  const Mat2 h = gate_matrix2(make(GateKind::kH));
  EXPECT_TRUE((h * x * h).approx_equal(z, 1e-14));
  // S^2 = Z, T^2 = S.
  const Mat2 s = gate_matrix2(make(GateKind::kS));
  const Mat2 t = gate_matrix2(make(GateKind::kT));
  EXPECT_TRUE((s * s).approx_equal(z, 1e-14));
  EXPECT_TRUE((t * t).approx_equal(s, 1e-14));
  // SX^2 = X.
  const Mat2 sx = gate_matrix2(make(GateKind::kSX));
  EXPECT_TRUE((sx * sx).approx_equal(x, 1e-14));
}

TEST(GateMatrix, RotationsAtSpecialAngles) {
  // RZ(pi) = -i Z; RX(pi) = -i X; RY(2 pi) = -I.
  const Mat2 z = gate_matrix2(make(GateKind::kZ));
  const Mat2 rz = gate_matrix2(make(GateKind::kRZ, 0, 1, {kPi, 0, 0}));
  EXPECT_TRUE(rz.approx_equal(z * cplx{0.0, -1.0}, 1e-14));
  const Mat2 x = gate_matrix2(make(GateKind::kX));
  const Mat2 rx = gate_matrix2(make(GateKind::kRX, 0, 1, {kPi, 0, 0}));
  EXPECT_TRUE(rx.approx_equal(x * cplx{0.0, -1.0}, 1e-14));
  const Mat2 ry2pi = gate_matrix2(make(GateKind::kRY, 0, 1, {2 * kPi, 0, 0}));
  EXPECT_TRUE(ry2pi.approx_equal(Mat2::identity() * cplx{-1.0, 0.0}, 1e-14));
}

TEST(GateMatrix, CxActionOnBasis) {
  // Control = q0 (low bit). Input |q1 q0> = |01> (index 1) -> |11> (index 3).
  const Mat4 cx = gate_matrix4(make(GateKind::kCX));
  EXPECT_NEAR(std::abs(cx(3, 1) - cplx{1.0, 0.0}), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(cx(1, 3) - cplx{1.0, 0.0}), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(cx(0, 0) - cplx{1.0, 0.0}), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(cx(2, 2) - cplx{1.0, 0.0}), 0.0, 1e-14);
}

TEST(GateMatrix, SwapMatrix) {
  const Mat4 sw = gate_matrix4(make(GateKind::kSwap));
  EXPECT_NEAR(std::abs(sw(2, 1) - cplx{1.0, 0.0}), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(sw(1, 2) - cplx{1.0, 0.0}), 0.0, 1e-14);
}

TEST(GateMatrix, RzzIsDiagonalPauliExponential) {
  const double theta = 0.37;
  const Mat4 rzz = gate_matrix4(make(GateKind::kRZZ, 0, 1, {theta, 0, 0}));
  const cplx em = std::exp(-kI * (theta / 2));
  const cplx ep = std::exp(kI * (theta / 2));
  EXPECT_NEAR(std::abs(rzz(0, 0) - em), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(rzz(1, 1) - ep), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(rzz(2, 2) - ep), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(rzz(3, 3) - em), 0.0, 1e-14);
}

TEST(GateNames, RoundTrip) {
  for (GateKind k : kAllOneQubit)
    EXPECT_EQ(gate_kind_from_name(gate_name(k)), k);
  for (GateKind k : kAllTwoQubit)
    EXPECT_EQ(gate_kind_from_name(gate_name(k)), k);
  EXPECT_THROW(gate_kind_from_name("nope"), std::invalid_argument);
}

TEST(GenericGates, PayloadRoundTrip) {
  Mat2 m = gate_matrix2(make(GateKind::kH));
  const Gate g = make_mat1_gate(2, m);
  EXPECT_TRUE(gate_matrix2(g).approx_equal(m));
  const Gate inv = inverse_gate(g);
  EXPECT_TRUE((gate_matrix2(inv) * m).approx_equal(Mat2::identity(), 1e-12));
}

TEST(GateToString, Format) {
  EXPECT_EQ(gate_to_string(make(GateKind::kCX, 2, 5)), "cx q2, q5");
  const std::string rz = gate_to_string(make(GateKind::kRZ, 3, -1, {0.5, 0, 0}));
  EXPECT_EQ(rz, "rz(0.5) q3");
}

}  // namespace
}  // namespace vqsim
