# Empty dependencies file for test_uccsd.
# This may be replaced when dependencies are built.
