#include "analyze/cost.hpp"

#include <cmath>

namespace vqsim::analyze {

const char* to_string(CostClass cls) {
  switch (cls) {
    case CostClass::kStateVector: return "statevector";
    case CostClass::kDensityMatrix: return "density_matrix";
    case CostClass::kStabilizer: return "stabilizer";
    case CostClass::kDistStateVector: return "dist_statevector";
  }
  return "?";
}

double statevector_cost_units(int num_qubits, std::size_t num_gates) {
  return static_cast<double>(num_gates) *
         std::ldexp(1.0, num_qubits);  // gates * 2^n
}

CostEstimate estimate_cost(const Circuit& circuit,
                           const CircuitProperties& props, CostClass cls,
                           int num_qubits, const CostModelOptions& options) {
  CostEstimate est;
  const double gates = static_cast<double>(props.num_gates);
  const double n = static_cast<double>(num_qubits);
  switch (cls) {
    case CostClass::kStateVector:
      est.amplitude_touches = gates * std::ldexp(1.0, num_qubits);
      break;
    case CostClass::kDensityMatrix:
      est.amplitude_touches = gates * std::ldexp(1.0, 2 * num_qubits);
      break;
    case CostClass::kStabilizer:
      // One sweep over the 2n+1-row tableau per gate: O(n^2) bit work.
      est.amplitude_touches = gates * n * n;
      break;
    case CostClass::kDistStateVector: {
      est.amplitude_touches = gates * std::ldexp(1.0, num_qubits);
      const int local = options.dist_local_qubits;
      if (local > 0 && local < num_qubits) {
        // Predict what the executor will actually do: a comm-avoiding plan
        // from the interaction-seeded initial layout.
        const LayoutPlan plan =
            plan_layout(circuit, num_qubits, local,
                        interaction_seeded_layout(props, num_qubits, local));
        est.exchange_amplitudes =
            static_cast<double>(plan.stats.planned_amplitudes);
        est.exchange_ops = static_cast<double>(plan.stats.planned_exchanges);
      }
      break;
    }
  }
  est.cost = est.amplitude_touches +
             options.exchange_weight * est.exchange_amplitudes;
  return est;
}

LayoutStats predict_layout_naive_stats(const Circuit& circuit, int num_qubits,
                                       int local_qubits) {
  LayoutStats st;
  const CommVolumeModel vol = comm_volume_model(num_qubits, local_qubits);
  std::uint64_t naive_swaps = 0;
  for (const Gate& g : circuit.gates()) {
    if (g.kind == GateKind::kI) continue;
    const bool g0 = g.q0 >= local_qubits;
    const bool g1 = g.is_two_qubit() && g.q1 >= local_qubits;
    if (g0 || g1) ++st.gates_with_global_operands;
    if (!g.is_two_qubit()) {
      if (g0) {
        st.naive_exchanges += vol.pairs;
        st.naive_amplitudes += vol.inplace_amps;
      }
    } else {
      const std::uint64_t lowered = (g0 ? 1u : 0u) + (g1 ? 1u : 0u);
      naive_swaps += 2 * lowered;
      st.naive_exchanges += 2 * lowered * vol.pairs;
      st.naive_amplitudes += 2 * lowered * vol.swap_amps;
    }
  }
  // With no planned swaps, swaps_avoided carries the whole naive count;
  // plan_layout's stats satisfy swaps_avoided + swaps_planned == this.
  st.swaps_avoided = static_cast<std::int64_t>(naive_swaps);
  return st;
}

}  // namespace vqsim::analyze
