#include "ir/gate.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "common/types.hpp"

namespace vqsim {
namespace {

Mat2 mat2_from_rows(cplx a, cplx b, cplx c, cplx d) {
  Mat2 m;
  m(0, 0) = a;
  m(0, 1) = b;
  m(1, 0) = c;
  m(1, 1) = d;
  return m;
}

Mat2 rx_matrix(double theta) {
  const double c = std::cos(theta / 2);
  const double s = std::sin(theta / 2);
  return mat2_from_rows(c, -kI * s, -kI * s, c);
}

Mat2 ry_matrix(double theta) {
  const double c = std::cos(theta / 2);
  const double s = std::sin(theta / 2);
  return mat2_from_rows(c, -s, s, c);
}

Mat2 rz_matrix(double theta) {
  return mat2_from_rows(std::exp(-kI * (theta / 2)), 0.0, 0.0,
                        std::exp(kI * (theta / 2)));
}

Mat2 p_matrix(double lambda) {
  return mat2_from_rows(1.0, 0.0, 0.0, std::exp(kI * lambda));
}

Mat2 u3_matrix(double theta, double phi, double lambda) {
  const double c = std::cos(theta / 2);
  const double s = std::sin(theta / 2);
  return mat2_from_rows(c, -std::exp(kI * lambda) * s,
                        std::exp(kI * phi) * s,
                        std::exp(kI * (phi + lambda)) * c);
}

Mat2 fixed_matrix2(GateKind kind) {
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  switch (kind) {
    case GateKind::kI:
      return Mat2::identity();
    case GateKind::kX:
      return mat2_from_rows(0.0, 1.0, 1.0, 0.0);
    case GateKind::kY:
      return mat2_from_rows(0.0, -kI, kI, 0.0);
    case GateKind::kZ:
      return mat2_from_rows(1.0, 0.0, 0.0, -1.0);
    case GateKind::kH:
      return mat2_from_rows(inv_sqrt2, inv_sqrt2, inv_sqrt2, -inv_sqrt2);
    case GateKind::kS:
      return mat2_from_rows(1.0, 0.0, 0.0, kI);
    case GateKind::kSdg:
      return mat2_from_rows(1.0, 0.0, 0.0, -kI);
    case GateKind::kT:
      return mat2_from_rows(1.0, 0.0, 0.0, std::exp(kI * (kPi / 4)));
    case GateKind::kTdg:
      return mat2_from_rows(1.0, 0.0, 0.0, std::exp(-kI * (kPi / 4)));
    case GateKind::kSX:
      return mat2_from_rows(cplx{0.5, 0.5}, cplx{0.5, -0.5}, cplx{0.5, -0.5},
                            cplx{0.5, 0.5});
    case GateKind::kSXdg:
      return mat2_from_rows(cplx{0.5, -0.5}, cplx{0.5, 0.5}, cplx{0.5, 0.5},
                            cplx{0.5, -0.5});
    default:
      throw std::invalid_argument("fixed_matrix2: not a fixed 1q gate");
  }
}

// Controlled-U with control on the low bit (q0) and target on the high bit
// (q1): indices 0 and 2 have control = 0 (identity), indices 1 and 3 have
// control = 1 (apply U between target values 0 and 1).
Mat4 controlled(const Mat2& u) {
  Mat4 m;
  m(0, 0) = 1.0;
  m(2, 2) = 1.0;
  m(1, 1) = u(0, 0);
  m(1, 3) = u(0, 1);
  m(3, 1) = u(1, 0);
  m(3, 3) = u(1, 1);
  return m;
}

Mat4 swap_matrix() {
  Mat4 m;
  m(0, 0) = 1.0;
  m(1, 2) = 1.0;
  m(2, 1) = 1.0;
  m(3, 3) = 1.0;
  return m;
}

// exp(-i theta/2 * (P x P)) for P in {X, Y, Z}; the two-qubit rotation family.
Mat4 pauli_pauli_rotation(GateKind kind, double theta) {
  const double c = std::cos(theta / 2);
  const double s = std::sin(theta / 2);
  Mat4 m;
  switch (kind) {
    case GateKind::kRXX:
      for (int i = 0; i < 4; ++i) m(i, i) = c;
      m(0, 3) = -kI * s;
      m(1, 2) = -kI * s;
      m(2, 1) = -kI * s;
      m(3, 0) = -kI * s;
      return m;
    case GateKind::kRYY:
      for (int i = 0; i < 4; ++i) m(i, i) = c;
      m(0, 3) = kI * s;
      m(1, 2) = -kI * s;
      m(2, 1) = -kI * s;
      m(3, 0) = kI * s;
      return m;
    case GateKind::kRZZ: {
      const cplx em = std::exp(-kI * (theta / 2));
      const cplx ep = std::exp(kI * (theta / 2));
      m(0, 0) = em;
      m(1, 1) = ep;
      m(2, 2) = ep;
      m(3, 3) = em;
      return m;
    }
    default:
      throw std::invalid_argument("pauli_pauli_rotation: bad kind");
  }
}

}  // namespace

int gate_arity(GateKind kind) {
  switch (kind) {
    case GateKind::kI:
    case GateKind::kX:
    case GateKind::kY:
    case GateKind::kZ:
    case GateKind::kH:
    case GateKind::kS:
    case GateKind::kSdg:
    case GateKind::kT:
    case GateKind::kTdg:
    case GateKind::kSX:
    case GateKind::kSXdg:
    case GateKind::kRX:
    case GateKind::kRY:
    case GateKind::kRZ:
    case GateKind::kP:
    case GateKind::kU3:
    case GateKind::kMat1:
      return 1;
    default:
      return 2;
  }
}

int gate_num_params(GateKind kind) {
  switch (kind) {
    case GateKind::kRX:
    case GateKind::kRY:
    case GateKind::kRZ:
    case GateKind::kP:
    case GateKind::kCRX:
    case GateKind::kCRY:
    case GateKind::kCRZ:
    case GateKind::kCP:
    case GateKind::kRXX:
    case GateKind::kRYY:
    case GateKind::kRZZ:
      return 1;
    case GateKind::kU3:
      return 3;
    default:
      return 0;
  }
}

const char* gate_name(GateKind kind) {
  switch (kind) {
    case GateKind::kI: return "id";
    case GateKind::kX: return "x";
    case GateKind::kY: return "y";
    case GateKind::kZ: return "z";
    case GateKind::kH: return "h";
    case GateKind::kS: return "s";
    case GateKind::kSdg: return "sdg";
    case GateKind::kT: return "t";
    case GateKind::kTdg: return "tdg";
    case GateKind::kSX: return "sx";
    case GateKind::kSXdg: return "sxdg";
    case GateKind::kRX: return "rx";
    case GateKind::kRY: return "ry";
    case GateKind::kRZ: return "rz";
    case GateKind::kP: return "p";
    case GateKind::kU3: return "u3";
    case GateKind::kCX: return "cx";
    case GateKind::kCY: return "cy";
    case GateKind::kCZ: return "cz";
    case GateKind::kCH: return "ch";
    case GateKind::kSwap: return "swap";
    case GateKind::kCRX: return "crx";
    case GateKind::kCRY: return "cry";
    case GateKind::kCRZ: return "crz";
    case GateKind::kCP: return "cp";
    case GateKind::kRXX: return "rxx";
    case GateKind::kRYY: return "ryy";
    case GateKind::kRZZ: return "rzz";
    case GateKind::kMat1: return "mat1";
    case GateKind::kMat2: return "mat2";
  }
  return "?";
}

GateKind gate_kind_from_name(const std::string& name) {
  static const std::unordered_map<std::string, GateKind> table = [] {
    std::unordered_map<std::string, GateKind> t;
    for (int k = 0; k <= static_cast<int>(GateKind::kMat2); ++k) {
      const auto kind = static_cast<GateKind>(k);
      t[gate_name(kind)] = kind;
    }
    return t;
  }();
  const auto it = table.find(name);
  if (it == table.end())
    throw std::invalid_argument("unknown gate name: " + name);
  return it->second;
}

Gate make_mat1_gate(int q, const Mat2& m) {
  Gate g;
  g.kind = GateKind::kMat1;
  g.q0 = q;
  g.mat1 = std::make_shared<const Mat2>(m);
  return g;
}

Gate make_mat2_gate(int q0, int q1, const Mat4& m) {
  Gate g;
  g.kind = GateKind::kMat2;
  g.q0 = q0;
  g.q1 = q1;
  g.mat2 = std::make_shared<const Mat4>(m);
  return g;
}

Mat2 gate_matrix2(const Gate& g) {
  switch (g.kind) {
    case GateKind::kRX:
      return rx_matrix(g.params[0]);
    case GateKind::kRY:
      return ry_matrix(g.params[0]);
    case GateKind::kRZ:
      return rz_matrix(g.params[0]);
    case GateKind::kP:
      return p_matrix(g.params[0]);
    case GateKind::kU3:
      return u3_matrix(g.params[0], g.params[1], g.params[2]);
    case GateKind::kMat1:
      if (!g.mat1) throw std::invalid_argument("kMat1 gate missing payload");
      return *g.mat1;
    default:
      if (gate_arity(g.kind) != 1)
        throw std::invalid_argument("gate_matrix2: two-qubit gate");
      return fixed_matrix2(g.kind);
  }
}

Mat2 gate_controlled_block(const Gate& g) {
  switch (g.kind) {
    case GateKind::kCX:
      return fixed_matrix2(GateKind::kX);
    case GateKind::kCY:
      return fixed_matrix2(GateKind::kY);
    case GateKind::kCZ:
      return fixed_matrix2(GateKind::kZ);
    case GateKind::kCH:
      return fixed_matrix2(GateKind::kH);
    case GateKind::kCRX:
      return rx_matrix(g.params[0]);
    case GateKind::kCRY:
      return ry_matrix(g.params[0]);
    case GateKind::kCRZ:
      return rz_matrix(g.params[0]);
    case GateKind::kCP:
      return p_matrix(g.params[0]);
    default:
      throw std::invalid_argument("gate_controlled_block: not controlled");
  }
}

bool gate_is_controlled(GateKind kind) {
  switch (kind) {
    case GateKind::kCX:
    case GateKind::kCY:
    case GateKind::kCZ:
    case GateKind::kCH:
    case GateKind::kCRX:
    case GateKind::kCRY:
    case GateKind::kCRZ:
    case GateKind::kCP:
      return true;
    default:
      return false;
  }
}

Mat4 gate_matrix4(const Gate& g) {
  switch (g.kind) {
    case GateKind::kCX:
    case GateKind::kCY:
    case GateKind::kCZ:
    case GateKind::kCH:
    case GateKind::kCRX:
    case GateKind::kCRY:
    case GateKind::kCRZ:
    case GateKind::kCP:
      return controlled(gate_controlled_block(g));
    case GateKind::kSwap:
      return swap_matrix();
    case GateKind::kRXX:
    case GateKind::kRYY:
    case GateKind::kRZZ:
      return pauli_pauli_rotation(g.kind, g.params[0]);
    case GateKind::kMat2:
      if (!g.mat2) throw std::invalid_argument("kMat2 gate missing payload");
      return *g.mat2;
    default:
      throw std::invalid_argument("gate_matrix4: single-qubit gate");
  }
}

Gate inverse_gate(const Gate& g) {
  Gate inv = g;
  switch (g.kind) {
    case GateKind::kS:
      inv.kind = GateKind::kSdg;
      return inv;
    case GateKind::kSdg:
      inv.kind = GateKind::kS;
      return inv;
    case GateKind::kT:
      inv.kind = GateKind::kTdg;
      return inv;
    case GateKind::kTdg:
      inv.kind = GateKind::kT;
      return inv;
    case GateKind::kSX:
      inv.kind = GateKind::kSXdg;
      return inv;
    case GateKind::kSXdg:
      inv.kind = GateKind::kSX;
      return inv;
    case GateKind::kU3:
      inv.params = {-g.params[0], -g.params[2], -g.params[1]};
      return inv;
    case GateKind::kMat1:
      return make_mat1_gate(g.q0, g.mat1->adjoint());
    case GateKind::kMat2:
      return make_mat2_gate(g.q0, g.q1, g.mat2->adjoint());
    default:
      if (gate_num_params(g.kind) == 1) {
        inv.params[0] = -g.params[0];
        return inv;
      }
      return inv;  // self-inverse fixed gates (I, X, Y, Z, H, CX, ...)
  }
}

bool gate_is_diagonal(const Gate& g) {
  switch (g.kind) {
    case GateKind::kI:
    case GateKind::kZ:
    case GateKind::kS:
    case GateKind::kSdg:
    case GateKind::kT:
    case GateKind::kTdg:
    case GateKind::kRZ:
    case GateKind::kP:
    case GateKind::kCZ:
    case GateKind::kCRZ:
    case GateKind::kCP:
    case GateKind::kRZZ:
      return true;
    case GateKind::kMat1: {
      const Mat2& m = *g.mat1;
      return m(0, 1) == cplx{} && m(1, 0) == cplx{};
    }
    case GateKind::kMat2: {
      const Mat4& m = *g.mat2;
      for (int r = 0; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
          if (r != c && m(r, c) != cplx{}) return false;
      return true;
    }
    default:
      return false;
  }
}

bool gate_is_clifford(const Gate& g) {
  // Multiple-of-pi/2 detection matching sim/stabilizer.cpp's quarter_turns
  // (same 1e-9 tolerance); returns k in [0, 4) or -1.
  const auto quarter_turns = [](double theta) -> int {
    if (!std::isfinite(theta)) return -1;
    const double k = theta / (kPi / 2.0);
    const double rounded = std::round(k);
    if (std::abs(k - rounded) > 1e-9) return -1;
    const long long ki = static_cast<long long>(rounded);
    return static_cast<int>(((ki % 4) + 4) % 4);
  };
  switch (g.kind) {
    case GateKind::kI:
    case GateKind::kX:
    case GateKind::kY:
    case GateKind::kZ:
    case GateKind::kH:
    case GateKind::kS:
    case GateKind::kSdg:
    case GateKind::kSX:
    case GateKind::kSXdg:
    case GateKind::kCX:
    case GateKind::kCY:
    case GateKind::kCZ:
    case GateKind::kSwap:
      return true;
    case GateKind::kRX:
    case GateKind::kRY:
    case GateKind::kRZ:
    case GateKind::kP:
    case GateKind::kRXX:
    case GateKind::kRYY:
    case GateKind::kRZZ:
      return quarter_turns(g.params[0]) >= 0;
    case GateKind::kCP:
    case GateKind::kCRZ: {
      const int k = quarter_turns(g.params[0]);
      return k == 0 || k == 2;  // identity or controlled-Z (up to phase)
    }
    default:
      return false;  // T, Tdg, U3, CH, CRX, CRY, generic matrices
  }
}

std::string gate_to_string(const Gate& g) {
  std::ostringstream os;
  os << gate_name(g.kind);
  const int np = gate_num_params(g.kind);
  if (np > 0) {
    os << "(";
    for (int i = 0; i < np; ++i) {
      if (i > 0) os << ", ";
      os << g.params[static_cast<std::size_t>(i)];
    }
    os << ")";
  }
  os << " q" << g.q0;
  if (g.is_two_qubit()) os << ", q" << g.q1;
  return os.str();
}

}  // namespace vqsim
