// Jordan-Wigner transform: fermion ladder operators -> Pauli strings.
//
//   a_p      = Z_0 ... Z_{p-1} (X_p + i Y_p) / 2
//   a^dag_p  = Z_0 ... Z_{p-1} (X_p - i Y_p) / 2
//
// Qubit p encodes the occupation of spin orbital p (|1> = occupied).
#pragma once

#include "chem/fermion.hpp"
#include "pauli/pauli_sum.hpp"

namespace vqsim {

/// JW image of a single ladder operator over `num_modes` modes.
PauliSum jw_ladder(const LadderOp& op, int num_modes);

/// JW image of an arbitrary fermion operator (simplified Pauli sum).
PauliSum jordan_wigner(const FermionOp& op);

}  // namespace vqsim
