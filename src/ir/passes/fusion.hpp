// Gate fusion pass (paper §4.3).
//
// Fuses runs of consecutive gates acting on the same qubit (or same qubit
// pair) into single generic matrix gates, capped at two qubits: NWQ-Sim
// deliberately stops at 4x4 matrices because the cost of applying a fused
// k-qubit gate grows as 2^k per amplitude group, and 2-qubit fusion is the
// sweet spot on wide SIMT/SIMD hardware.
//
// Single-qubit gates adjacent to a two-qubit gate on one of its operands are
// absorbed into the two-qubit matrix. Groups whose accumulated matrix is the
// identity (e.g. a gate followed by its inverse) are dropped entirely.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/circuit.hpp"

namespace vqsim {

struct FusionOptions {
  /// Emit the original gate unchanged when a fusion group contains exactly
  /// one gate (keeps mnemonics readable and avoids matrix churn).
  bool keep_singletons = true;
  /// Drop fusion groups equal to the identity to this tolerance.
  double identity_tolerance = 1e-12;
};

struct FusionStats {
  std::size_t gates_before = 0;
  std::size_t gates_after = 0;
  std::size_t groups_dropped_identity = 0;
  double reduction() const {
    return gates_before == 0
               ? 0.0
               : 1.0 - static_cast<double>(gates_after) /
                           static_cast<double>(gates_before);
  }
};

/// Replayable record of the numeric arithmetic the fuser performed — every
/// matrix load and product, in execution order, keyed by *input gate
/// index*. A caller holding a different binding of the same circuit shape
/// can recompute the fused matrices bit-identically by replaying the steps
/// against its own gates instead of re-running the pass (exec::
/// CompiledCircuit does exactly this on its bind hot path).
///
/// The recorded output list is only shape-stable when identity dropping is
/// disabled (identity_tolerance < 0): dropping depends on the numeric
/// values of one particular binding.
struct FusionTrace {
  struct Step {
    /// Register machine: acc2 is a 2x2 accumulator (one-qubit runs), m4 a
    /// 4x4 accumulator. Each op mirrors one Fuser statement verbatim.
    enum class Op : std::uint8_t {
      kLoad1,        // acc2 = gate_matrix2(in[gate])
      kMul1,         // acc2 = gate_matrix2(in[gate]) * acc2
      kAbsorbLow,    // m4 = m4 * embed_low(acc2)
      kAbsorbHigh,   // m4 = m4 * embed_high(acc2)
      kLoad2,        // m4 = gate_matrix4(in[gate])
      kMul2,         // m4 = gate_matrix4(in[gate]) * m4
      kMul2Swapped,  // m4 = swap_qubit_order(gate_matrix4(in[gate])) * m4
      kMulLow,       // m4 = embed_low(gate_matrix2(in[gate])) * m4
      kMulHigh,      // m4 = embed_high(gate_matrix2(in[gate])) * m4
    };
    Op op = Op::kLoad1;
    std::uint32_t gate = 0;  // input gate index; unused for kAbsorb*
  };
  /// One emitted gate of the fused circuit, in output order.
  struct Output {
    enum class Kind : std::uint8_t {
      kSingleton,  // output is in[gate] verbatim (keep_singletons)
      kMat1,       // mat1(q0, acc2) after replaying [steps_begin, steps_end)
      kMat2,       // mat2(q0, q1, m4) after replaying the step span
    };
    Kind kind = Kind::kSingleton;
    std::uint32_t gate = 0;  // kSingleton: the input gate index
    int q0 = -1;
    int q1 = -1;
    std::uint32_t steps_begin = 0;
    std::uint32_t steps_end = 0;
  };
  std::vector<Step> steps;
  std::vector<Output> outputs;
};

/// Fuse `circuit`; returns the semantically-equivalent fused circuit and
/// fills `stats` and `trace` when non-null.
Circuit fuse_gates(const Circuit& circuit, const FusionOptions& options = {},
                   FusionStats* stats = nullptr, FusionTrace* trace = nullptr);

}  // namespace vqsim
