#include "vqe/vqd.hpp"

#include <memory>
#include <stdexcept>

#include "sim/compiled_op.hpp"

namespace vqsim {

VqdResult run_vqd(const Ansatz& ansatz, const PauliSum& hamiltonian,
                  const VqdOptions& options) {
  if (options.num_states < 1)
    throw std::invalid_argument("run_vqd: need at least one state");
  const int nq = ansatz.num_qubits();
  const CompiledPauliSum compiled(hamiltonian, nq);

  VqdResult result;
  std::vector<StateVector> found;  // deflated states

  StateVector psi(nq);
  for (int k = 0; k < options.num_states; ++k) {
    const ObjectiveFn objective = [&](std::span<const double> theta) {
      ansatz.prepare(&psi, theta);
      double value = compiled.expectation(psi);
      for (const StateVector& prev : found)
        value += options.beta * psi.fidelity(prev);
      return value;
    };

    std::unique_ptr<Optimizer> opt;
    switch (options.vqe.optimizer) {
      case OptimizerKind::kNelderMead:
        opt = std::make_unique<NelderMead>(options.vqe.nelder_mead);
        break;
      case OptimizerKind::kSpsa:
        opt = std::make_unique<Spsa>(options.vqe.spsa);
        break;
      case OptimizerKind::kAdam:
        opt = std::make_unique<Adam>(options.vqe.adam);
        break;
    }

    std::vector<double> x0 = options.vqe.initial_parameters;
    if (x0.empty()) x0.assign(ansatz.num_parameters(), 0.0);
    // Higher states: kick the seed far from the previous optimum — at the
    // previous optimum the penalty gradient vanishes exactly (saddle), and
    // product-exponential ansaetze typically reach orthogonal states a
    // quarter-period away.
    if (k > 0)
      for (std::size_t i = 0; i < x0.size(); ++i)
        x0[i] += (i % 2 == 0 ? 1.0 : -1.0) * kPi /
                 (4.0 + static_cast<double>(k - 1));

    const OptimizerResult r = opt->minimize(objective, std::move(x0));

    ansatz.prepare(&psi, r.x);
    result.energies.push_back(compiled.expectation(psi));  // penalty-free
    result.parameters.push_back(r.x);
    result.evaluations.push_back(r.evaluations);
    found.push_back(psi);
  }
  return result;
}

}  // namespace vqsim
