#include "sim/readout_error.hpp"

#include <stdexcept>

#include "common/bits.hpp"

namespace vqsim {

ReadoutErrorModel ReadoutErrorModel::uniform(int num_qubits, double p01,
                                             double p10) {
  if (num_qubits <= 0 || p01 < 0.0 || p10 < 0.0 || p01 + p10 >= 1.0)
    throw std::invalid_argument("ReadoutErrorModel: bad parameters");
  ReadoutErrorModel m;
  m.p01.assign(static_cast<std::size_t>(num_qubits), p01);
  m.p10.assign(static_cast<std::size_t>(num_qubits), p10);
  return m;
}

idx ReadoutErrorModel::corrupt(idx outcome, Rng& rng) const {
  for (int q = 0; q < num_qubits(); ++q) {
    const bool bit = test_bit(outcome, static_cast<unsigned>(q));
    const double flip =
        bit ? p10[static_cast<std::size_t>(q)] : p01[static_cast<std::size_t>(q)];
    if (rng.uniform() < flip) outcome ^= idx{1} << q;
  }
  return outcome;
}

double ReadoutErrorModel::parity_attenuation(std::uint64_t mask) const {
  double factor = 1.0;
  for (int q = 0; q < num_qubits(); ++q)
    if ((mask >> q) & 1)
      factor *= 1.0 - p01[static_cast<std::size_t>(q)] -
                p10[static_cast<std::size_t>(q)];
  return factor;
}

std::vector<idx> corrupt_samples(const std::vector<idx>& samples,
                                 const ReadoutErrorModel& model, Rng& rng) {
  std::vector<idx> out;
  out.reserve(samples.size());
  for (idx s : samples) out.push_back(model.corrupt(s, rng));
  return out;
}

double mitigated_z_mask_expectation(const std::vector<idx>& corrupted,
                                    std::uint64_t mask,
                                    const ReadoutErrorModel& model) {
  if (corrupted.empty())
    throw std::invalid_argument("mitigated_z_mask_expectation: no samples");
  for (int q = 0; q < model.num_qubits(); ++q)
    if (((mask >> q) & 1) &&
        std::abs(model.p01[static_cast<std::size_t>(q)] -
                 model.p10[static_cast<std::size_t>(q)]) > 1e-12)
      throw std::invalid_argument(
          "mitigated_z_mask_expectation: asymmetric readout errors need a "
          "full confusion-matrix inversion");
  const double attenuation = model.parity_attenuation(mask);
  if (attenuation <= 0.0)
    throw std::invalid_argument(
        "mitigated_z_mask_expectation: non-invertible readout model");
  std::int64_t acc = 0;
  for (idx s : corrupted) acc += parity(s & mask) ? -1 : 1;
  const double raw =
      static_cast<double>(acc) / static_cast<double>(corrupted.size());
  return raw / attenuation;
}

}  // namespace vqsim
