# Empty compiler generated dependencies file for test_fcidump.
# This may be replaced when dependencies are built.
