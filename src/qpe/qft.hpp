// Quantum Fourier transform circuits (QPE building block).
#pragma once

#include "ir/circuit.hpp"

namespace vqsim {

/// QFT on qubits [first, first + count): |x> -> 1/sqrt(N) sum_y
/// exp(2 pi i x y / N) |y> with the usual little-endian convention
/// (qubit `first` is the least significant bit of x).
Circuit qft_circuit(int num_qubits, int first, int count);

/// Inverse QFT on the same window.
Circuit inverse_qft_circuit(int num_qubits, int first, int count);

}  // namespace vqsim
