#include "chem/jordan_wigner.hpp"

#include <gtest/gtest.h>

#include "chem/fci.hpp"
#include "chem/hartree_fock.hpp"
#include "chem/molecules.hpp"
#include "linalg/jacobi.hpp"
#include "sim/expectation.hpp"

namespace vqsim {
namespace {

using F = FermionOp;

PauliSum jw_single(const LadderOp& op, int n) { return jw_ladder(op, n); }

TEST(JordanWigner, CanonicalAnticommutators) {
  // {a_p, a^dag_q} = delta_pq; {a_p, a_q} = 0.
  const int n = 4;
  for (int p = 0; p < n; ++p) {
    for (int q = 0; q < n; ++q) {
      const PauliSum ap = jw_single(F::annihilate(p), n);
      const PauliSum aqd = jw_single(F::create(q), n);
      PauliSum anti = ap * aqd + aqd * ap;
      anti.simplify();
      if (p == q) {
        ASSERT_EQ(anti.size(), 1u) << p << "," << q;
        EXPECT_TRUE(anti[0].string.is_identity());
        EXPECT_NEAR(std::abs(anti[0].coefficient - cplx{1.0, 0.0}), 0.0,
                    1e-13);
      } else {
        EXPECT_TRUE(anti.empty()) << p << "," << q;
      }

      const PauliSum aq = jw_single(F::annihilate(q), n);
      PauliSum anti2 = ap * aq + aq * ap;
      anti2.simplify();
      EXPECT_TRUE(anti2.empty()) << p << "," << q;
    }
  }
}

TEST(JordanWigner, NumberOperatorIsHalfOneMinusZ) {
  F number;
  number.add_term(1.0, {F::create(2), F::annihilate(2)});
  PauliSum p = jordan_wigner(number);
  // Expect 0.5 I - 0.5 Z_2.
  ASSERT_EQ(p.size(), 2u);
  EXPECT_NEAR(p.identity_coefficient().real(), 0.5, 1e-14);
  for (const PauliTerm& t : p.terms()) {
    if (t.string.is_identity()) continue;
    EXPECT_EQ(t.string, PauliString::from_string("IIZ"));
    EXPECT_NEAR(t.coefficient.real(), -0.5, 1e-14);
  }
}

TEST(JordanWigner, HoppingTermIsHermitian) {
  F hop;
  hop.add_term(1.0, {F::create(0), F::annihilate(3)});
  hop.add_term(1.0, {F::create(3), F::annihilate(0)});
  const PauliSum p = jordan_wigner(hop);
  EXPECT_TRUE(p.is_hermitian());
  // Hopping across modes 0..3 must carry the Z string on modes 1, 2.
  for (const PauliTerm& t : p.terms()) {
    EXPECT_EQ(t.string.axis(1), PauliAxis::kZ);
    EXPECT_EQ(t.string.axis(2), PauliAxis::kZ);
  }
}

TEST(JordanWigner, MolecularHamiltonianHermitian) {
  const PauliSum h = jordan_wigner(molecular_hamiltonian(h2_sto3g()));
  EXPECT_TRUE(h.is_hermitian(1e-10));
  EXPECT_EQ(h.num_qubits(), 4);
  // The classic H2/STO-3G qubit Hamiltonian has 15 terms.
  EXPECT_EQ(h.size(), 15u);
}

TEST(JordanWigner, SpectrumMatchesDeterminantFci) {
  // Dense diagonalization of the JW matrix restricted to the 2-electron
  // sector must agree with the determinant-basis FCI solver.
  const FermionOp h_fermion = molecular_hamiltonian(h2_sto3g());
  const PauliSum h_qubit = jordan_wigner(h_fermion);
  const DenseMatrix m = pauli_sum_matrix(h_qubit, 4);
  const EigenSystem all = hermitian_eigensystem(m);

  const FciResult fci = fci_ground_state(h_fermion, 4, 2);
  // FCI ground energy appears in the full JW spectrum.
  double best = 1e9;
  for (double e : all.eigenvalues) best = std::min(best, std::abs(e - fci.energy));
  EXPECT_LT(best, 1e-9);
}

TEST(JordanWigner, HfExpectationMatchesIntegralFormula) {
  for (const MolecularIntegrals& ints :
       {h2_sto3g(), water_like(4, 4), hubbard_chain(3, 4, 1.0, 2.0)}) {
    const PauliSum h = jordan_wigner(molecular_hamiltonian(ints));
    StateVector hf(2 * ints.norb);
    hf.set_basis_state(hf_basis_state(ints.nelec));
    EXPECT_NEAR(expectation(hf, h), ints.hartree_fock_energy(), 1e-9);
  }
}

}  // namespace
}  // namespace vqsim
