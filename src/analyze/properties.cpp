#include "analyze/properties.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <map>
#include <numeric>
#include <sstream>
#include <utility>

#include "telemetry/json_writer.hpp"

namespace vqsim::analyze {
namespace {

bool is_rotation(GateKind kind) {
  switch (kind) {
    case GateKind::kRX:
    case GateKind::kRY:
    case GateKind::kRZ:
    case GateKind::kP:
    case GateKind::kCRX:
    case GateKind::kCRY:
    case GateKind::kCRZ:
    case GateKind::kCP:
    case GateKind::kRXX:
    case GateKind::kRYY:
    case GateKind::kRZZ:
      return true;
    default:
      return false;
  }
}

bool same_operands(const Gate& a, const Gate& b) {
  return a.q0 == b.q0 && a.q1 == b.q1;
}

// Mirrors ir::cancel_gates' inverse-pair predicate (non-rotation kinds;
// rotations are handled by angle merging).
bool is_inverse_pair(const Gate& a, const Gate& b) {
  if (!same_operands(a, b)) {
    const bool symmetric =
        a.kind == GateKind::kSwap || a.kind == GateKind::kCZ;
    return symmetric && a.kind == b.kind && a.q0 == b.q1 && a.q1 == b.q0;
  }
  if (is_rotation(a.kind)) return false;
  const Gate inv = inverse_gate(a);
  if (inv.kind != b.kind) return false;
  if (a.kind == GateKind::kU3) {
    for (int i = 0; i < 3; ++i)
      if (std::abs(inv.params[static_cast<std::size_t>(i)] -
                   b.params[static_cast<std::size_t>(i)]) > 1e-15)
        return false;
  }
  if (a.kind == GateKind::kMat1 || a.kind == GateKind::kMat2)
    return false;  // generic payload comparison is fusion's job
  return true;
}

bool is_trivially_dead(const Gate& g, double angle_tolerance) {
  if (g.kind == GateKind::kI) return true;
  switch (g.kind) {
    case GateKind::kRX:
    case GateKind::kRY:
    case GateKind::kRZ:
    case GateKind::kP:
      return std::abs(g.params[0]) < angle_tolerance;
    default:
      return false;
  }
}

// Frame action of the fixed single-qubit Cliffords as a permutation of the
// Pauli axes (signs are irrelevant for diagonality tracking). Returns
// kUnknown for kinds with no exact axis permutation.
PauliAxis clifford_frame_map(GateKind kind, PauliAxis frame) {
  const bool fz = frame == PauliAxis::kZ;
  const bool fx = frame == PauliAxis::kX;
  const bool fy = frame == PauliAxis::kY;
  switch (kind) {
    case GateKind::kX:
    case GateKind::kY:
    case GateKind::kZ:
      return frame;  // Pauli conjugation only flips signs
    case GateKind::kH:
      if (fz) return PauliAxis::kX;
      if (fx) return PauliAxis::kZ;
      return frame;  // Y -> -Y
    case GateKind::kS:
    case GateKind::kSdg:
      if (fx) return PauliAxis::kY;
      if (fy) return PauliAxis::kX;
      return frame;  // Z fixed
    case GateKind::kSX:
    case GateKind::kSXdg:
      if (fz) return PauliAxis::kY;
      if (fy) return PauliAxis::kZ;
      return frame;  // X fixed
    default:
      return PauliAxis::kUnknown;
  }
}

// -- Passes ----------------------------------------------------------------

class StructurePass final : public PropertyPass {
 public:
  const char* name() const override { return "structure"; }
  void run(const Circuit& circuit, const PropertyOptions& options,
           CircuitProperties& props, DiagnosticSink& sink) const override {
    (void)sink;
    const int n = circuit.num_qubits();
    props.num_qubits = n;
    props.num_gates = circuit.size();
    props.num_measurements = circuit.measurements().size();
    props.depth = circuit.depth();
    props.facts.assign(circuit.size(), GateFacts{});

    InteractionGraph& ig = props.interaction;
    ig.num_qubits = n;
    ig.degree.assign(static_cast<std::size_t>(n), 0);
    ig.coupling_weight.assign(static_cast<std::size_t>(n), 0);
    ig.locality_weight.assign(static_cast<std::size_t>(n), 0);
    std::map<std::pair<int, int>, std::uint64_t> pair_counts;

    for (std::size_t i = 0; i < circuit.size(); ++i) {
      const Gate& g = circuit[i];
      GateFacts& f = props.facts[i];
      f.axis0 = pauli_axis(g, g.q0);
      f.diagonal = gate_is_diagonal(g);
      f.trivially_dead = is_trivially_dead(g, options.angle_tolerance);
      if (f.trivially_dead) ++props.trivially_dead_gates;
      if (g.is_two_qubit()) {
        ++props.two_qubit_gates;
        f.axis1 = pauli_axis(g, g.q1);
        const auto [a, b] = std::minmax(g.q0, g.q1);
        ++pair_counts[{a, b}];
        ++ig.coupling_weight[static_cast<std::size_t>(g.q0)];
        ++ig.coupling_weight[static_cast<std::size_t>(g.q1)];
      } else {
        ++props.one_qubit_gates;
      }
      // Locality pressure: exactly the uses plan_layout schedules around.
      if (g.kind != GateKind::kI && !f.diagonal) {
        ++ig.locality_weight[static_cast<std::size_t>(g.q0)];
        if (g.is_two_qubit())
          ++ig.locality_weight[static_cast<std::size_t>(g.q1)];
      }
    }

    ig.edges.reserve(pair_counts.size());
    for (const auto& [pair, count] : pair_counts) {
      ig.edges.push_back({pair.first, pair.second, count});
      ++ig.degree[static_cast<std::size_t>(pair.first)];
      ++ig.degree[static_cast<std::size_t>(pair.second)];
    }
  }
};

class CliffordPass final : public PropertyPass {
 public:
  const char* name() const override { return "clifford"; }
  void run(const Circuit& circuit, const PropertyOptions& options,
           CircuitProperties& props, DiagnosticSink& sink) const override {
    (void)options;
    bool prefix_open = true;
    props.clifford_prefix = 0;
    props.clifford_gates = 0;
    for (std::size_t i = 0; i < circuit.size(); ++i) {
      const bool clifford = gate_is_clifford(circuit[i]);
      props.facts[i].clifford = clifford;
      if (clifford) ++props.clifford_gates;
      if (prefix_open && clifford)
        ++props.clifford_prefix;
      else
        prefix_open = false;
    }
    props.all_clifford = props.clifford_gates == props.num_gates;
    props.clifford_fraction =
        props.num_gates == 0 ? 1.0
                             : static_cast<double>(props.clifford_gates) /
                                   static_cast<double>(props.num_gates);
    if (props.all_clifford && props.num_gates > 0) {
      std::ostringstream os;
      os << "all " << props.num_gates
         << " gates are Clifford; the job is routable to the stabilizer "
            "backend without a clifford_only promise";
      sink.note(DiagCode::kAutoCliffordRoutable, -1, -1, os.str());
    }
  }
};

class BasisTrackingPass final : public PropertyPass {
 public:
  const char* name() const override { return "basis_tracking"; }
  void run(const Circuit& circuit, const PropertyOptions& options,
           CircuitProperties& props, DiagnosticSink& sink) const override {
    (void)options;
    (void)sink;
    // frame[q]: the Pauli axis along which the state built by the prefix
    // is "diagonal" on q. Starts at Z (|0...0> is a Z eigenstate); exact
    // single-qubit Clifford frame maps keep it precise, everything else
    // collapses the qubit to top (kUnknown).
    std::vector<PauliAxis> frame(static_cast<std::size_t>(circuit.num_qubits()),
                                 PauliAxis::kZ);
    props.diagonal_gates = 0;
    props.diagonal_in_context_gates = 0;
    for (std::size_t i = 0; i < circuit.size(); ++i) {
      const Gate& g = circuit[i];
      GateFacts& f = props.facts[i];
      if (f.diagonal) ++props.diagonal_gates;

      PauliAxis& f0 = frame[static_cast<std::size_t>(g.q0)];
      if (g.kind == GateKind::kI) {
        f.diagonal_in_context = true;
        ++props.diagonal_in_context_gates;
        continue;
      }
      if (!g.is_two_qubit()) {
        if (f.axis0 != PauliAxis::kUnknown && f.axis0 == f0) {
          // Acts along the tracked axis: diagonal in context, frame fixed.
          f.diagonal_in_context = true;
          ++props.diagonal_in_context_gates;
        } else {
          f0 = clifford_frame_map(g.kind, f0);
        }
        continue;
      }

      PauliAxis& f1 = frame[static_cast<std::size_t>(g.q1)];
      if (g.kind == GateKind::kSwap) {
        std::swap(f0, f1);
        continue;
      }
      const bool m0 = f.axis0 != PauliAxis::kUnknown && f.axis0 == f0;
      const bool m1 = f.axis1 != PauliAxis::kUnknown && f.axis1 == f1;
      if (m0 && m1) {
        f.diagonal_in_context = true;
        ++props.diagonal_in_context_gates;
      } else {
        // A two-qubit gate off its frame entangles the frames; each
        // mismatched operand collapses to top. (A matched operand's axis
        // commutes with the gate and survives.)
        if (!m0) f0 = PauliAxis::kUnknown;
        if (!m1) f1 = PauliAxis::kUnknown;
      }
    }
  }
};

class LightConePass final : public PropertyPass {
 public:
  const char* name() const override { return "light_cone"; }
  bool dataflow() const override { return true; }
  void run(const Circuit& circuit, const PropertyOptions& options,
           CircuitProperties& props, DiagnosticSink& sink) const override {
    if (circuit.measurements().empty()) return;  // facts default to reachable
    const std::vector<char> reaches = measurement_light_cone(circuit);
    for (std::size_t i = 0; i < circuit.size(); ++i) {
      props.facts[i].reaches_measurement = reaches[i] != 0;
      if (reaches[i] != 0) continue;
      ++props.unreachable_gates;
      // Trivially dead gates are already the dead-gate lint's business.
      if (props.facts[i].trivially_dead) continue;
      if (options.lint) {
        sink.warning(DiagCode::kDeadGate, static_cast<std::ptrdiff_t>(i),
                     circuit[i].q0,
                     "gate lies outside every measurement light cone; it "
                     "cannot influence any measured qubit");
      }
    }
  }
};

class CancellationPass final : public PropertyPass {
 public:
  const char* name() const override { return "cancellation"; }
  bool dataflow() const override { return true; }
  void run(const Circuit& circuit, const PropertyOptions& options,
           CircuitProperties& props, DiagnosticSink& sink) const override {
    const CancellationSummary summary =
        analyze_cancellations(circuit, options.angle_tolerance);
    props.cancelling_pairs = summary.pairs_cancelled;
    props.mergeable_rotations = summary.rotations_merged;
    for (std::size_t i = 0; i < summary.partner.size(); ++i)
      props.facts[i].cancels_with = summary.partner[i];
    if (!options.lint) return;
    if (summary.pairs_cancelled > 0) {
      std::ostringstream os;
      os << summary.pairs_cancelled
         << " commutation-separated gate pair(s) cancel exactly; run "
            "ir::cancel_gates before dispatch";
      sink.warning(DiagCode::kCancellingPair, -1, -1, os.str());
    }
    if (summary.rotations_merged > 0) {
      std::ostringstream os;
      os << summary.rotations_merged
         << " rotation(s) merge into an earlier same-axis rotation across "
            "commuting gates";
      sink.warning(DiagCode::kRedundantRotation, -1, -1, os.str());
    }
  }
};

}  // namespace

std::uint64_t InteractionGraph::pair_gates(int a, int b) const {
  if (a > b) std::swap(a, b);
  for (const InteractionEdge& e : edges)
    if (e.q0 == a && e.q1 == b) return e.gates;
  return 0;
}

const char* to_string(PauliAxis axis) {
  switch (axis) {
    case PauliAxis::kNone: return "none";
    case PauliAxis::kZ: return "z";
    case PauliAxis::kX: return "x";
    case PauliAxis::kY: return "y";
    case PauliAxis::kUnknown: return "unknown";
  }
  return "?";
}

PauliAxis pauli_axis(const Gate& g, int qubit) {
  const bool on0 = qubit == g.q0;
  const bool on1 = g.is_two_qubit() && qubit == g.q1;
  if (!on0 && !on1) return PauliAxis::kNone;
  switch (g.kind) {
    case GateKind::kI:
      return PauliAxis::kNone;
    case GateKind::kZ:
    case GateKind::kS:
    case GateKind::kSdg:
    case GateKind::kT:
    case GateKind::kTdg:
    case GateKind::kRZ:
    case GateKind::kP:
      return PauliAxis::kZ;
    case GateKind::kX:
    case GateKind::kSX:
    case GateKind::kSXdg:
    case GateKind::kRX:
      return PauliAxis::kX;
    case GateKind::kY:
    case GateKind::kRY:
      return PauliAxis::kY;
    case GateKind::kCX:
      return on0 ? PauliAxis::kZ : PauliAxis::kX;
    case GateKind::kCY:
      return on0 ? PauliAxis::kZ : PauliAxis::kY;
    case GateKind::kCRX:
      return on0 ? PauliAxis::kZ : PauliAxis::kX;
    case GateKind::kCRY:
      return on0 ? PauliAxis::kZ : PauliAxis::kY;
    case GateKind::kCZ:
    case GateKind::kCRZ:
    case GateKind::kCP:
    case GateKind::kRZZ:
      return PauliAxis::kZ;
    case GateKind::kCH:
      return on0 ? PauliAxis::kZ : PauliAxis::kUnknown;
    case GateKind::kRXX:
      return PauliAxis::kX;
    case GateKind::kRYY:
      return PauliAxis::kY;
    case GateKind::kMat1:
    case GateKind::kMat2:
      return gate_is_diagonal(g) ? PauliAxis::kZ : PauliAxis::kUnknown;
    default:
      return PauliAxis::kUnknown;  // kH, kU3, kSwap
  }
}

bool gates_commute(const Gate& a, const Gate& b) {
  const auto check = [&](int q) {
    const PauliAxis pa = pauli_axis(a, q);
    const PauliAxis pb = pauli_axis(b, q);
    if (pa == PauliAxis::kNone || pb == PauliAxis::kNone) return true;
    if (pa == PauliAxis::kUnknown || pb == PauliAxis::kUnknown) return false;
    return pa == pb;
  };
  if (!check(a.q0)) return false;
  if (a.is_two_qubit() && !check(a.q1)) return false;
  return true;
}

std::vector<std::unique_ptr<PropertyPass>> property_passes() {
  std::vector<std::unique_ptr<PropertyPass>> passes;
  passes.push_back(std::make_unique<StructurePass>());
  passes.push_back(std::make_unique<CliffordPass>());
  passes.push_back(std::make_unique<BasisTrackingPass>());
  passes.push_back(std::make_unique<LightConePass>());
  passes.push_back(std::make_unique<CancellationPass>());
  return passes;
}

CircuitProperties infer_properties(const Circuit& circuit,
                                   const PropertyOptions& options) {
  CircuitProperties props;
  DiagnosticCollector collector;
  for (const auto& pass : property_passes()) {
    if (pass->dataflow() && !options.dataflow) continue;
    pass->run(circuit, options, props, collector);
  }
  props.diagnostics = collector.take();
  return props;
}

CancellationSummary analyze_cancellations(const Circuit& circuit,
                                          double angle_tolerance) {
  const std::size_t n = circuit.size();
  CancellationSummary summary;
  summary.partner.assign(n, -1);
  // Effective gates: rotation merges fold angles into the survivor.
  std::vector<Gate> eff(circuit.gates().begin(), circuit.gates().end());
  std::vector<char> alive(n, 1);

  for (std::size_t i = 0; i < n; ++i) {
    const Gate g = eff[i];
    for (std::size_t j = i; j-- > 0;) {
      if (!alive[j]) continue;
      const Gate& h = eff[j];
      const bool shares = h.q0 == g.q0 ||
                          (g.is_two_qubit() && h.q0 == g.q1) ||
                          (h.is_two_qubit() &&
                           (h.q1 == g.q0 ||
                            (g.is_two_qubit() && h.q1 == g.q1)));
      if (!shares) continue;  // disjoint supports always commute
      const bool arity_match = h.is_two_qubit() == g.is_two_qubit();
      if (arity_match && is_inverse_pair(h, g)) {
        alive[j] = 0;
        alive[i] = 0;
        summary.partner[i] = static_cast<std::ptrdiff_t>(j);
        summary.partner[j] = static_cast<std::ptrdiff_t>(i);
        ++summary.pairs_cancelled;
        break;
      }
      if (arity_match && is_rotation(g.kind) && h.kind == g.kind &&
          same_operands(h, g)) {
        eff[j].params[0] += g.params[0];
        alive[i] = 0;
        summary.partner[i] = static_cast<std::ptrdiff_t>(j);
        ++summary.rotations_merged;
        if (std::abs(eff[j].params[0]) < angle_tolerance) {
          alive[j] = 0;
          ++summary.pairs_cancelled;
        }
        break;
      }
      if (gates_commute(g, h)) continue;  // hop over and keep looking
      break;  // blocked by a non-commuting gate
    }
  }
  return summary;
}

std::vector<char> measurement_light_cone(const Circuit& circuit) {
  const std::size_t n = circuit.size();
  std::vector<char> reaches(n, 1);
  if (circuit.measurements().empty()) return reaches;
  reaches.assign(n, 0);

  std::vector<Measurement> ms(circuit.measurements());
  std::sort(ms.begin(), ms.end(), [](const Measurement& a,
                                     const Measurement& b) {
    return a.position > b.position;
  });
  std::vector<char> live(static_cast<std::size_t>(circuit.num_qubits()), 0);
  std::size_t next = 0;
  for (std::size_t i = n; i-- > 0;) {
    // A measurement at position p sees gates with index < p.
    while (next < ms.size() && ms[next].position > i) {
      live[static_cast<std::size_t>(ms[next].qubit)] = 1;
      ++next;
    }
    const Gate& g = circuit[i];
    if (g.kind == GateKind::kI) continue;  // acts trivially, spreads nothing
    const bool l = live[static_cast<std::size_t>(g.q0)] != 0 ||
                   (g.is_two_qubit() &&
                    live[static_cast<std::size_t>(g.q1)] != 0);
    if (!l) continue;
    reaches[i] = 1;
    live[static_cast<std::size_t>(g.q0)] = 1;
    if (g.is_two_qubit()) live[static_cast<std::size_t>(g.q1)] = 1;
  }
  return reaches;
}

std::vector<int> interaction_seeded_layout(const CircuitProperties& props,
                                           int num_qubits, int local_qubits) {
  if (local_qubits <= 0 || local_qubits > num_qubits)
    throw std::invalid_argument(
        "interaction_seeded_layout: bad register partition");
  std::vector<int> order(static_cast<std::size_t>(num_qubits));
  std::iota(order.begin(), order.end(), 0);
  const auto weight = [&](int q) -> std::uint64_t {
    const auto& w = props.interaction.locality_weight;
    return static_cast<std::size_t>(q) < w.size()
               ? w[static_cast<std::size_t>(q)]
               : 0;
  };
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return weight(a) > weight(b);  // ties keep index order (stable)
  });

  // Winners take the local slots, both halves in ascending logical order
  // so a circuit with uniform pressure seeds the identity.
  std::vector<int> winners(order.begin(), order.begin() + local_qubits);
  std::vector<int> losers(order.begin() + local_qubits, order.end());
  std::sort(winners.begin(), winners.end());
  std::sort(losers.begin(), losers.end());
  std::vector<int> layout(static_cast<std::size_t>(num_qubits));
  for (int s = 0; s < local_qubits; ++s)
    layout[static_cast<std::size_t>(winners[static_cast<std::size_t>(s)])] = s;
  for (std::size_t k = 0; k < losers.size(); ++k)
    layout[static_cast<std::size_t>(losers[k])] =
        local_qubits + static_cast<int>(k);
  return layout;
}

std::string properties_to_json(const CircuitProperties& props) {
  telemetry::JsonWriter w;
  w.begin_object();
  w.key("num_qubits"); w.value(static_cast<std::int64_t>(props.num_qubits));
  w.key("num_gates"); w.value(static_cast<std::uint64_t>(props.num_gates));
  w.key("one_qubit_gates");
  w.value(static_cast<std::uint64_t>(props.one_qubit_gates));
  w.key("two_qubit_gates");
  w.value(static_cast<std::uint64_t>(props.two_qubit_gates));
  w.key("num_measurements");
  w.value(static_cast<std::uint64_t>(props.num_measurements));
  w.key("depth"); w.value(static_cast<std::uint64_t>(props.depth));

  w.key("clifford");
  w.begin_object();
  w.key("gates"); w.value(static_cast<std::uint64_t>(props.clifford_gates));
  w.key("prefix"); w.value(static_cast<std::uint64_t>(props.clifford_prefix));
  w.key("all_clifford"); w.value(props.all_clifford);
  w.key("fraction"); w.value(props.clifford_fraction);
  w.end_object();

  w.key("diagonal");
  w.begin_object();
  w.key("computational");
  w.value(static_cast<std::uint64_t>(props.diagonal_gates));
  w.key("in_context");
  w.value(static_cast<std::uint64_t>(props.diagonal_in_context_gates));
  w.end_object();

  w.key("dataflow");
  w.begin_object();
  w.key("cancelling_pairs");
  w.value(static_cast<std::uint64_t>(props.cancelling_pairs));
  w.key("mergeable_rotations");
  w.value(static_cast<std::uint64_t>(props.mergeable_rotations));
  w.key("trivially_dead_gates");
  w.value(static_cast<std::uint64_t>(props.trivially_dead_gates));
  w.key("unreachable_gates");
  w.value(static_cast<std::uint64_t>(props.unreachable_gates));
  w.end_object();

  w.key("interaction");
  w.begin_object();
  w.key("edges");
  w.begin_array();
  for (const InteractionEdge& e : props.interaction.edges) {
    w.begin_object();
    w.key("q0"); w.value(static_cast<std::int64_t>(e.q0));
    w.key("q1"); w.value(static_cast<std::int64_t>(e.q1));
    w.key("gates"); w.value(e.gates);
    w.end_object();
  }
  w.end_array();
  w.key("degree");
  w.begin_array();
  for (std::uint64_t d : props.interaction.degree) w.value(d);
  w.end_array();
  w.key("locality_weight");
  w.begin_array();
  for (std::uint64_t d : props.interaction.locality_weight) w.value(d);
  w.end_array();
  w.end_object();

  w.key("diagnostics");
  w.begin_array();
  for (const Diagnostic& d : props.diagnostics) {
    w.begin_object();
    w.key("severity"); w.value(to_string(d.severity));
    w.key("code"); w.value(to_string(d.code));
    w.key("gate_index"); w.value(static_cast<std::int64_t>(d.gate_index));
    w.key("qubit"); w.value(static_cast<std::int64_t>(d.qubit));
    w.key("message"); w.value(d.message);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

}  // namespace vqsim::analyze
