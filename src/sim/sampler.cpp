#include "sim/sampler.hpp"

#include <algorithm>

#include "common/bits.hpp"

namespace vqsim {
namespace {

// Cumulative distribution over basis states (inclusive prefix sums).
std::vector<double> cumulative(const StateVector& psi) {
  std::vector<double> cdf(psi.dim());
  double acc = 0.0;
  const cplx* a = psi.data();
  for (idx i = 0; i < psi.dim(); ++i) {
    acc += std::norm(a[i]);
    cdf[i] = acc;
  }
  // Guard against rounding: force the last entry to cover u in [0, 1).
  if (!cdf.empty()) cdf.back() = std::max(cdf.back(), 1.0);
  return cdf;
}

}  // namespace

std::vector<idx> sample_states(const StateVector& psi, std::size_t shots,
                               Rng& rng) {
  const std::vector<double> cdf = cumulative(psi);
  std::vector<idx> out;
  out.reserve(shots);
  for (std::size_t s = 0; s < shots; ++s) {
    const double u = rng.uniform();
    const auto it = std::upper_bound(cdf.begin(), cdf.end(), u);
    out.push_back(static_cast<idx>(it - cdf.begin()));
  }
  return out;
}

std::map<idx, std::size_t> sample_counts(const StateVector& psi,
                                         std::size_t shots, Rng& rng) {
  std::map<idx, std::size_t> counts;
  for (idx s : sample_states(psi, shots, rng)) ++counts[s];
  return counts;
}

double sampled_z_mask_expectation(const StateVector& psi, std::uint64_t mask,
                                  std::size_t shots, Rng& rng) {
  if (shots == 0) return 0.0;
  const std::vector<idx> states = sample_states(psi, shots, rng);
  std::int64_t sum = 0;
  for (idx s : states) sum += parity(s & mask) ? -1 : 1;
  return static_cast<double>(sum) / static_cast<double>(shots);
}

}  // namespace vqsim
