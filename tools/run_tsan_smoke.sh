#!/usr/bin/env bash
# TSan smoke gate for the concurrent runtime: build with -fsanitize=thread
# and run the runtime + dist test binaries. Any reported data race fails the
# script (TSAN_OPTIONS halt_on_error + the tests' own exit codes).
#
# Usage: tools/run_tsan_smoke.sh [build-dir]   (default: build-tsan)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build-tsan}"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DVQSIM_SANITIZE=thread \
  -DVQSIM_BUILD_BENCH=OFF \
  -DVQSIM_BUILD_EXAMPLES=OFF

cmake --build "${build_dir}" -j --target test_runtime test_dist

export TSAN_OPTIONS="halt_on_error=1 abort_on_error=1 ${TSAN_OPTIONS:-}"

echo "== test_runtime (TSan) =="
"${build_dir}/tests/test_runtime"

echo "== test_dist (TSan) =="
"${build_dir}/tests/test_dist"

echo "TSan smoke passed: zero data races reported."
