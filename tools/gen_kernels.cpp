// Generates kernels_generated.inc: branch-free constant-folded lane bodies
// for the fixed-matrix gates (H, X, Y, Z, S, Sdg, T, Tdg, SX, SXdg, CX, CY,
// CZ, CH, Swap), invoked through the skeleton macros kernel_impl.inc
// defines before including the output.
//
// The folding rules mirror the runtime dispatch exactly:
//  * matrices come from the same ir/gate.cpp factories the generic kernels
//    would use (gate_matrix2 / gate_controlled_block), and phase gates use
//    the same std::exp expressions StateVector::apply_gate evaluated at
//    runtime (S is exp(i*pi/2), NOT the textbook matrix entry i — the two
//    differ in the last bits of the real part);
//  * constants are printed as hexfloats, so they round-trip bit-exactly;
//  * a zero coefficient drops its term, +/-1 folds to a copy/negation, a
//    purely real or imaginary coefficient keeps only the surviving
//    products — in the seed's left-to-right summation order, so every
//    computed rounding matches the generic kernel's.
//
// Run: gen_kernels <output-path>  (build-time custom command; see
// src/CMakeLists.txt).

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "common/types.hpp"
#include "ir/gate.hpp"

namespace {

using vqsim::cplx;
using vqsim::Gate;
using vqsim::GateKind;
using vqsim::kI;
using vqsim::kPi;
using vqsim::Mat2;

std::string hexd(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

// A sum-of-terms expression under construction.
struct Expr {
  std::string s;
  void add(bool neg, const std::string& term) {
    if (s.empty())
      s = neg ? "-" + term : term;
    else
      s += (neg ? " - " : " + ") + term;
  }
};

// Append coefficient w times input `v` (components <v>r / <v>i) to the
// real/imaginary expressions. Sign normalizations stay bitwise-faithful:
// IEEE negation commutes with multiplication and a - b == a + (-b).
void add_term(Expr& re, Expr& im, cplx w, const std::string& v) {
  const double wr = w.real();
  const double wi = w.imag();
  const std::string vr = v + "r";
  const std::string vi = v + "i";
  if (wr == 0.0 && wi == 0.0) return;
  if (wi == 0.0) {
    if (wr == 1.0) {
      re.add(false, vr);
      im.add(false, vi);
    } else if (wr == -1.0) {
      re.add(true, vr);
      im.add(true, vi);
    } else {
      const bool neg = std::signbit(wr);
      const std::string c = hexd(neg ? -wr : wr);
      re.add(neg, c + " * " + vr);
      im.add(neg, c + " * " + vi);
    }
    return;
  }
  if (wr == 0.0) {
    // (0, d) * a = (-d*ai, d*ar)
    if (wi == 1.0) {
      re.add(true, vi);
      im.add(false, vr);
    } else if (wi == -1.0) {
      re.add(false, vi);
      im.add(true, vr);
    } else {
      const bool neg = std::signbit(wi);
      const std::string c = hexd(neg ? -wi : wi);
      re.add(!neg, c + " * " + vi);
      im.add(neg, c + " * " + vr);
    }
    return;
  }
  const std::string cr = hexd(wr);
  const std::string ci = hexd(wi);
  re.add(false, "(" + cr + " * " + vr + " - " + ci + " * " + vi + ")");
  im.add(false, "(" + cr + " * " + vi + " + " + ci + " * " + vr + ")");
}

std::string row(cplx w0, const std::string& v0, cplx w1,
                const std::string& v1) {
  Expr re, im;
  add_term(re, im, w0, v0);
  add_term(re, im, w1, v1);
  if (re.s.empty()) re.s = "0.0";
  if (im.s.empty()) im.s = "0.0";
  return "cplx{" + re.s + ", " + im.s + "}";
}

std::string diag_body(cplx e) {
  Expr re, im;
  add_term(re, im, e, "a");
  return "cplx{" + re.s + ", " + im.s + "}";
}

void emit_pair_body(std::FILE* out, const char* macro, const char* fn,
                    const Mat2& m) {
  std::fprintf(out, "%s(%s,\n", macro, fn);
  std::fprintf(out, "  const double a0r = p0[j].real();\n");
  std::fprintf(out, "  const double a0i = p0[j].imag();\n");
  std::fprintf(out, "  const double a1r = p1[j].real();\n");
  std::fprintf(out, "  const double a1i = p1[j].imag();\n");
  std::fprintf(out, "  p0[j] = %s;\n",
               row(m(0, 0), "a0", m(0, 1), "a1").c_str());
  std::fprintf(out, "  p1[j] = %s;\n",
               row(m(1, 0), "a0", m(1, 1), "a1").c_str());
  std::fprintf(out, ")\n\n");
}

void emit_diag(std::FILE* out, const char* macro, const char* fn, cplx e) {
  std::fprintf(out, "%s(%s,\n", macro, fn);
  std::fprintf(out, "  const double ar = p[j].real();\n");
  std::fprintf(out, "  const double ai = p[j].imag();\n");
  std::fprintf(out, "  p[j] = %s;\n", diag_body(e).c_str());
  std::fprintf(out, ")\n\n");
}

Mat2 matrix_of(GateKind kind) {
  Gate g;
  g.kind = kind;
  g.q0 = 0;
  return gate_matrix2(g);
}

Mat2 block_of(GateKind kind) {
  Gate g;
  g.kind = kind;
  g.q0 = 0;
  g.q1 = 1;
  return gate_controlled_block(g);
}

}  // namespace

int main(int argc, char** argv) {
  std::FILE* out = stdout;
  if (argc > 1) {
    out = std::fopen(argv[1], "w");
    if (!out) {
      std::fprintf(stderr, "gen_kernels: cannot open %s\n", argv[1]);
      return 1;
    }
  }

  std::fprintf(out,
               "// Generated by tools/gen_kernels.cpp — do not edit.\n"
               "// Constant-folded fixed-matrix gate kernels; included by\n"
               "// kernel_impl.inc after the VQSIM_GEN_* skeleton macros.\n\n");

  // Dense 1q: matrices from the same factories the generic path uses.
  struct Dense1 {
    const char* fn;
    const char* kind;
    GateKind k;
  };
  const Dense1 dense1[] = {
      {"gen_x", "kX", GateKind::kX},       {"gen_y", "kY", GateKind::kY},
      {"gen_h", "kH", GateKind::kH},       {"gen_sx", "kSX", GateKind::kSX},
      {"gen_sxdg", "kSXdg", GateKind::kSXdg},
  };
  for (const auto& d : dense1)
    emit_pair_body(out, "VQSIM_GEN_1Q_DENSE", d.fn, matrix_of(d.k));

  // Diagonal 1q: Z folds from the Pauli route's global*sign product; the
  // phase gates bake the runtime's exp(i*phi).
  emit_diag(out, "VQSIM_GEN_1Q_DIAG", "gen_z", cplx{1.0, 0.0} * -1.0);
  emit_diag(out, "VQSIM_GEN_1Q_DIAG", "gen_s", std::exp(kI * (kPi / 2)));
  emit_diag(out, "VQSIM_GEN_1Q_DIAG", "gen_sdg", std::exp(kI * (-kPi / 2)));
  emit_diag(out, "VQSIM_GEN_1Q_DIAG", "gen_t", std::exp(kI * (kPi / 4)));
  emit_diag(out, "VQSIM_GEN_1Q_DIAG", "gen_tdg", std::exp(kI * (-kPi / 4)));

  // Controlled dense 2q: target blocks via gate_controlled_block.
  emit_pair_body(out, "VQSIM_GEN_2Q_CTRL", "gen_cx", block_of(GateKind::kCX));
  emit_pair_body(out, "VQSIM_GEN_2Q_CTRL", "gen_cy", block_of(GateKind::kCY));
  emit_pair_body(out, "VQSIM_GEN_2Q_CTRL", "gen_ch", block_of(GateKind::kCH));

  // CZ: phase on |11>, the runtime's exp(i*pi).
  emit_diag(out, "VQSIM_GEN_2Q_DIAG11", "gen_cz", std::exp(kI * kPi));

  // Swap: the middle quarters exchange; rows 0 and 3 are identity and stay
  // untouched (and uncounted).
  std::fprintf(out,
               "VQSIM_GEN_2Q_SWAP(gen_swap,\n"
               "  const cplx t = p01[j];\n"
               "  p01[j] = p10[j];\n"
               "  p10[j] = t;\n"
               ")\n\n");

  std::fprintf(
      out,
      "inline void register_generated(KernelTable& t) {\n"
      "  const auto at = [](GateKind k) { return static_cast<std::size_t>(k); "
      "};\n");
  for (const auto& d : dense1) {
    std::fprintf(out, "  t.fixed1[at(GateKind::%s)] = &%s;\n", d.kind, d.fn);
    std::fprintf(out, "  t.fixed1_halves[at(GateKind::%s)] = &%s_halves;\n",
                 d.kind, d.fn);
  }
  std::fprintf(out,
               "  t.fixed1[at(GateKind::kZ)] = &gen_z;\n"
               "  t.fixed1[at(GateKind::kS)] = &gen_s;\n"
               "  t.fixed1[at(GateKind::kSdg)] = &gen_sdg;\n"
               "  t.fixed1[at(GateKind::kT)] = &gen_t;\n"
               "  t.fixed1[at(GateKind::kTdg)] = &gen_tdg;\n"
               "  t.fixed2[at(GateKind::kCX)] = &gen_cx;\n"
               "  t.fixed2[at(GateKind::kCY)] = &gen_cy;\n"
               "  t.fixed2[at(GateKind::kCH)] = &gen_ch;\n"
               "  t.fixed2[at(GateKind::kCZ)] = &gen_cz;\n"
               "  t.fixed2[at(GateKind::kSwap)] = &gen_swap;\n"
               "}\n");

  if (out != stdout) std::fclose(out);
  return 0;
}
