#include "sim/stabilizer.hpp"

#include <gtest/gtest.h>

#include "chem/fci.hpp"
#include "chem/jordan_wigner.hpp"
#include "chem/molecules.hpp"
#include "common/rng.hpp"
#include "sim/expectation.hpp"
#include "vqe/cafqa.hpp"
#include "vqe/vqe.hpp"

namespace vqsim {
namespace {

Circuit random_clifford_circuit(int num_qubits, std::size_t gates, Rng& rng) {
  Circuit c(num_qubits);
  for (std::size_t i = 0; i < gates; ++i) {
    const int q0 = static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(num_qubits)));
    int q1 = q0;
    while (q1 == q0)
      q1 = static_cast<int>(
          rng.uniform_index(static_cast<std::uint64_t>(num_qubits)));
    switch (rng.uniform_index(9)) {
      case 0: c.h(q0); break;
      case 1: c.s(q0); break;
      case 2: c.sdg(q0); break;
      case 3: c.x(q0); break;
      case 4: c.cx(q0, q1); break;
      case 5: c.cz(q0, q1); break;
      case 6: c.swap(q0, q1); break;
      case 7: c.ry(kPi / 2 * static_cast<double>(rng.uniform_index(4)), q0); break;
      default: c.rz(kPi / 2 * static_cast<double>(rng.uniform_index(4)), q0); break;
    }
  }
  return c;
}

PauliString random_pauli(int n, Rng& rng) {
  PauliString s;
  for (int q = 0; q < n; ++q)
    s.set_axis(q, static_cast<PauliAxis>(rng.uniform_index(4)));
  return s;
}

TEST(Stabilizer, InitialStateStabilizedByZ) {
  StabilizerState state(3);
  EXPECT_EQ(state.expectation(PauliString::from_string("ZII")), 1.0);
  EXPECT_EQ(state.expectation(PauliString::from_string("IZZ")), 1.0);
  EXPECT_EQ(state.expectation(PauliString::from_string("XII")), 0.0);
  EXPECT_EQ(state.expectation(PauliString::identity()), 1.0);
}

TEST(Stabilizer, BellStateCorrelations) {
  StabilizerState state(2);
  state.apply_h(0);
  state.apply_cx(0, 1);
  EXPECT_EQ(state.expectation(PauliString::from_string("XX")), 1.0);
  EXPECT_EQ(state.expectation(PauliString::from_string("ZZ")), 1.0);
  EXPECT_EQ(state.expectation(PauliString::from_string("YY")), -1.0);
  EXPECT_EQ(state.expectation(PauliString::from_string("ZI")), 0.0);
  EXPECT_EQ(state.expectation(PauliString::from_string("XI")), 0.0);
}

TEST(Stabilizer, SignTracking) {
  // X|0> = |1>: <Z> = -1.
  StabilizerState state(1);
  state.apply_x(0);
  EXPECT_EQ(state.expectation(PauliString::from_string("Z")), -1.0);
  // S|+> has <Y> = +1.
  StabilizerState plus(1);
  plus.apply_h(0);
  plus.apply_s(0);
  EXPECT_EQ(plus.expectation(PauliString::from_string("Y")), 1.0);
  EXPECT_EQ(plus.expectation(PauliString::from_string("X")), 0.0);
}

TEST(Stabilizer, MatchesStateVectorOnRandomCliffordCircuits) {
  Rng rng(801);
  for (int trial = 0; trial < 8; ++trial) {
    const int n = 4;
    const Circuit c = random_clifford_circuit(n, 60, rng);

    StabilizerState tableau(n);
    ASSERT_TRUE(tableau.try_apply_circuit(c));
    StateVector psi(n);
    psi.apply_circuit(c);

    for (int k = 0; k < 25; ++k) {
      const PauliString p = random_pauli(n, rng);
      const double exact = expectation_pauli(psi, p).real();
      EXPECT_NEAR(tableau.expectation(p), exact, 1e-10)
          << "trial " << trial << " " << p.to_string(n);
    }
  }
}

TEST(Stabilizer, RejectsNonCliffordGates) {
  StabilizerState state(2);
  Gate t;
  t.kind = GateKind::kT;
  t.q0 = 0;
  EXPECT_FALSE(state.try_apply_gate(t));
  Gate rz;
  rz.kind = GateKind::kRZ;
  rz.q0 = 0;
  rz.params[0] = 0.3;
  EXPECT_FALSE(state.try_apply_gate(rz));
  rz.params[0] = kPi / 2;
  EXPECT_TRUE(state.try_apply_gate(rz));
}

TEST(Stabilizer, TwoQubitRotationFamiliesAtQuarterTurns) {
  Rng rng(802);
  for (GateKind kind : {GateKind::kRXX, GateKind::kRYY, GateKind::kRZZ}) {
    for (int k = 0; k < 4; ++k) {
      Circuit prep = random_clifford_circuit(3, 20, rng);
      Gate g;
      g.kind = kind;
      g.q0 = 0;
      g.q1 = 2;
      g.params[0] = k * kPi / 2;
      Circuit c = prep;
      c.add(g);

      StabilizerState tableau(3);
      ASSERT_TRUE(tableau.try_apply_circuit(c));
      StateVector psi(3);
      psi.apply_circuit(c);
      for (int t = 0; t < 10; ++t) {
        const PauliString p = random_pauli(3, rng);
        EXPECT_NEAR(tableau.expectation(p), expectation_pauli(psi, p).real(),
                    1e-10)
            << gate_name(kind) << " k=" << k;
      }
    }
  }
}

TEST(Cafqa, RecoversHartreeFockOnH2) {
  const MolecularIntegrals ints = h2_sto3g();
  const PauliSum h = jordan_wigner(molecular_hamiltonian(ints));
  const HardwareEfficientAnsatz ansatz(4, 2, /*nelec=*/0);
  const CafqaResult r = cafqa_bootstrap(ansatz, h);
  // The Clifford grid contains the HF determinant (X gates are Clifford),
  // so the discrete optimum is at least as good.
  EXPECT_LE(r.energy, ints.hartree_fock_energy() + 1e-9);
  EXPECT_GT(r.clifford_evaluations, 0u);
}

TEST(Cafqa, WarmStartsContinuousVqe) {
  const FermionOp hf = molecular_hamiltonian(h2_sto3g());
  const PauliSum h = jordan_wigner(hf);
  const double e_fci = fci_ground_state(hf, 4, 2).energy;

  const HardwareEfficientAnsatz ansatz(4, 2, 0);
  const CafqaResult boot = cafqa_bootstrap(ansatz, h);

  VqeOptions opts;
  opts.initial_parameters = boot.parameters;
  opts.nelder_mead.max_evaluations = 8000;
  opts.nelder_mead.initial_step = 0.2;
  const VqeResult r = run_vqe(ansatz, h, opts);
  EXPECT_NEAR(r.energy, e_fci, 1e-4);
  EXPECT_LE(r.energy, boot.energy + 1e-9);  // VQE refines the bootstrap
}

TEST(Cafqa, RejectsNonCliffordAnsatz) {
  PauliSum h(4);
  h.add_term(1.0, "ZZII");
  const UccsdAnsatzAdapter uccsd(4, 2);  // gadget angles are not quarter-turn
  EXPECT_THROW(cafqa_bootstrap(uccsd, h), std::invalid_argument);
}

}  // namespace
}  // namespace vqsim
