# Empty dependencies file for perf_caching.
# This may be replaced when dependencies are built.
