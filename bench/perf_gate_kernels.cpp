// Gate-kernel throughput: single-/two-qubit gate application across state
// sizes. This is the raw engine speed underneath every headline number
// (paper §4: "distributing parallel simulation of gates ... across cores").

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "sim/state_vector.hpp"

namespace {

using namespace vqsim;

StateVector random_state(int n, std::uint64_t seed) {
  Rng rng(seed);
  AmpVector amps(idx{1} << n);
  for (cplx& a : amps) a = rng.normal_cplx();
  StateVector sv = StateVector::from_amplitudes(std::move(amps));
  sv.normalize();
  return sv;
}

void BM_Hadamard(benchmark::State& state) {
  const int nq = static_cast<int>(state.range(0));
  StateVector sv = random_state(nq, 1);
  Gate h;
  h.kind = GateKind::kH;
  int q = 0;
  for (auto _ : state) {
    h.q0 = q;
    sv.apply_gate(h);
    q = (q + 1) % nq;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sv.dim()));
}
BENCHMARK(BM_Hadamard)->Arg(12)->Arg(16)->Arg(20)->Arg(22);

void BM_Cnot(benchmark::State& state) {
  const int nq = static_cast<int>(state.range(0));
  StateVector sv = random_state(nq, 2);
  Gate cx;
  cx.kind = GateKind::kCX;
  int q = 0;
  for (auto _ : state) {
    cx.q0 = q;
    cx.q1 = (q + 1) % nq;
    sv.apply_gate(cx);
    q = (q + 1) % nq;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sv.dim()));
}
BENCHMARK(BM_Cnot)->Arg(12)->Arg(16)->Arg(20)->Arg(22);

void BM_GenericTwoQubitMatrix(benchmark::State& state) {
  const int nq = static_cast<int>(state.range(0));
  StateVector sv = random_state(nq, 3);
  Gate g;
  g.kind = GateKind::kRXX;
  g.params[0] = 0.3;
  const Mat4 m = gate_matrix4(g);
  int q = 0;
  for (auto _ : state) {
    sv.apply_mat4(m, q, (q + 1) % nq);
    q = (q + 1) % nq;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sv.dim()));
}
BENCHMARK(BM_GenericTwoQubitMatrix)->Arg(12)->Arg(16)->Arg(20);

void BM_DiagonalRz(benchmark::State& state) {
  const int nq = static_cast<int>(state.range(0));
  StateVector sv = random_state(nq, 4);
  Gate rz;
  rz.kind = GateKind::kRZ;
  rz.params[0] = 0.1;
  int q = 0;
  for (auto _ : state) {
    rz.q0 = q;
    sv.apply_gate(rz);
    q = (q + 1) % nq;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sv.dim()));
}
BENCHMARK(BM_DiagonalRz)->Arg(12)->Arg(16)->Arg(20)->Arg(22);

void BM_ExpPauliGadgetDirect(benchmark::State& state) {
  const int nq = static_cast<int>(state.range(0));
  StateVector sv = random_state(nq, 5);
  const PauliString p = PauliString::from_string(
      std::string("XYZZYX").substr(0, 6) + std::string(nq - 6, 'I'));
  for (auto _ : state) {
    sv.apply_exp_pauli(p, 0.05);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sv.dim()));
}
BENCHMARK(BM_ExpPauliGadgetDirect)->Arg(12)->Arg(16)->Arg(20);

}  // namespace
