// Pauli strings in the symplectic (X-mask, Z-mask) representation.
//
// A string over n <= 64 qubits stores one bit per qubit in each of two
// masks: qubit q carries X iff bit q of `x` is set, Z iff bit q of `z` is
// set, and Y when both are set (Y = i X Z). This makes multiplication,
// commutation checks and qubit-wise-commutation checks O(1)-ish bit algebra,
// which is what lets the expectation engine and the JW transform scale.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/types.hpp"

namespace vqsim {

enum class PauliAxis : std::uint8_t { kI = 0, kX = 1, kY = 2, kZ = 3 };

struct PauliString {
  std::uint64_t x = 0;
  std::uint64_t z = 0;

  static constexpr int kMaxQubits = 64;

  /// Identity on any register.
  static PauliString identity() { return {}; }

  /// Build from a text spec such as "XIZY" (leftmost character = qubit 0).
  static PauliString from_string(const std::string& spec);

  /// Single-axis string, e.g. single_axis(PauliAxis::kY, 3).
  static PauliString single_axis(PauliAxis axis, int qubit);

  PauliAxis axis(int qubit) const;
  void set_axis(int qubit, PauliAxis axis);

  bool is_identity() const { return x == 0 && z == 0; }

  /// Number of non-identity positions.
  int weight() const;

  /// Index of the highest non-identity qubit plus one (0 for identity).
  int min_qubits() const;

  /// True when the strings commute as operators.
  bool commutes_with(const PauliString& other) const;

  /// True when the strings commute qubit-wise: at every position the axes
  /// are equal or at least one is the identity. This is the grouping
  /// criterion for shared measurement bases (paper §4.1).
  bool qubitwise_commutes_with(const PauliString& other) const;

  friend bool operator==(const PauliString&, const PauliString&) = default;

  /// Render as e.g. "XIZY" over `num_qubits` positions.
  std::string to_string(int num_qubits) const;
};

/// Product of two strings: out = phase * a * b, with phase in {1, i, -1, -i}.
/// Returns the string; the phase is written to `phase`.
PauliString multiply(const PauliString& a, const PauliString& b, cplx* phase);

/// Hash functor for unordered containers keyed by PauliString.
struct PauliStringHash {
  std::size_t operator()(const PauliString& p) const {
    const std::uint64_t h = p.x * 0x9E3779B97F4A7C15ull ^
                            (p.z + 0x7F4A7C159E3779B9ull + (p.x << 6));
    return static_cast<std::size_t>(h ^ (h >> 29));
  }
};

}  // namespace vqsim
