// Post-ansatz state caching, wall-clock (paper §4.1): one energy
// evaluation with the ansatz executed once (cached) vs re-prepared for
// every measurement group (non-caching baseline).

#include <benchmark/benchmark.h>

#include "chem/jordan_wigner.hpp"
#include "chem/molecules.hpp"
#include "common/rng.hpp"
#include "downfold/active_space.hpp"
#include "vqe/executor.hpp"

namespace {

using namespace vqsim;

struct Problem {
  PauliSum hamiltonian;
  UccsdAnsatzAdapter ansatz;
  std::vector<double> theta;

  explicit Problem(int nact)
      : hamiltonian(jordan_wigner(molecular_hamiltonian(
            project_active(water_like(10, 10), ActiveSpace{2, nact})))),
        ansatz(2 * nact, 6) {
    Rng rng(17);
    theta.assign(ansatz.num_parameters(), 0.0);
    for (double& t : theta) t = rng.uniform(-0.1, 0.1);
  }
};

void BM_CachedEvaluation(benchmark::State& state) {
  Problem p(static_cast<int>(state.range(0)));
  ExecutorOptions opts;
  opts.mode = ExpectationMode::kBasisRotation;
  opts.cache_ansatz_state = true;
  SimulatorExecutor e(p.ansatz, p.hamiltonian, opts);
  for (auto _ : state) benchmark::DoNotOptimize(e.evaluate(p.theta));
  state.counters["ansatz_gates"] = static_cast<double>(p.ansatz.gate_count());
}
BENCHMARK(BM_CachedEvaluation)->Arg(4)->Arg(5);

void BM_NonCachingEvaluation(benchmark::State& state) {
  Problem p(static_cast<int>(state.range(0)));
  ExecutorOptions opts;
  opts.mode = ExpectationMode::kBasisRotation;
  opts.cache_ansatz_state = false;
  SimulatorExecutor e(p.ansatz, p.hamiltonian, opts);
  for (auto _ : state) benchmark::DoNotOptimize(e.evaluate(p.theta));
  const auto groups = group_qubitwise_commuting(p.hamiltonian);
  state.counters["groups"] = static_cast<double>(groups.size());
}
BENCHMARK(BM_NonCachingEvaluation)->Arg(4)->Arg(5);

}  // namespace
