file(REMOVE_RECURSE
  "CMakeFiles/perf_expectation.dir/perf_expectation.cpp.o"
  "CMakeFiles/perf_expectation.dir/perf_expectation.cpp.o.d"
  "perf_expectation"
  "perf_expectation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_expectation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
