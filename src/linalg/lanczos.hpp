// Lanczos ground-state solver for Hermitian operators.
//
// Provides the exact-diagonalization (FCI) reference energies against which
// every VQE / ADAPT-VQE / downfolding result in this repository is validated
// (the paper's Fig. 5 plots energy error against exactly this reference).
#pragma once

#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace vqsim {

/// A Hermitian linear operator y = A x on vectors of dimension `dim`.
struct LinearOp {
  std::size_t dim = 0;
  std::function<void(const cplx* x, cplx* y)> apply;
};

struct LanczosOptions {
  int max_iterations = 300;
  double tolerance = 1e-10;       // convergence of the smallest Ritz value
  std::uint64_t seed = 12345;     // random start vector
  bool full_reorthogonalize = true;
};

struct LanczosResult {
  double eigenvalue = 0.0;
  std::vector<cplx> eigenvector;  // normalized
  int iterations = 0;
  bool converged = false;
};

/// Smallest eigenvalue/eigenvector of a Hermitian operator.
LanczosResult lanczos_ground_state(const LinearOp& op,
                                   const LanczosOptions& options = {});

/// Eigenvalues of a real symmetric tridiagonal matrix (diag, offdiag) by
/// implicit QL with Wilkinson shifts; returned ascending. Exposed for tests.
std::vector<double> tridiagonal_eigenvalues(std::vector<double> diag,
                                            std::vector<double> offdiag);

}  // namespace vqsim
