# Empty compiler generated dependencies file for perf_downfold.
# This may be replaced when dependencies are built.
