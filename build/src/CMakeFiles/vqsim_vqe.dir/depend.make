# Empty dependencies file for vqsim_vqe.
# This may be replaced when dependencies are built.
