# Empty compiler generated dependencies file for vqsim_api.
# This may be replaced when dependencies are built.
