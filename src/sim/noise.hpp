// Stochastic (quantum-trajectory) noise execution.
//
// NWQ-Sim's density-matrix backend models noisy devices; at statevector cost
// we provide the trajectory-sampling equivalent: Kraus channels are applied
// stochastically after each gate, and observables are averaged over
// trajectories. Listed in DESIGN.md as the density-matrix substitution.
#pragma once

#include "common/rng.hpp"
#include "ir/circuit.hpp"
#include "pauli/pauli_sum.hpp"
#include "sim/state_vector.hpp"

namespace vqsim {

struct NoiseModel {
  /// Probability of a uniformly random X/Y/Z error on each operand qubit
  /// after every gate (depolarizing channel, trajectory form).
  double depolarizing = 0.0;
  /// Amplitude-damping rate applied to each operand qubit after every gate.
  double damping = 0.0;

  bool is_noiseless() const { return depolarizing <= 0.0 && damping <= 0.0; }
};

/// Apply `circuit` under `model`, sampling one noise trajectory.
void apply_noisy_circuit(StateVector* psi, const Circuit& circuit,
                         const NoiseModel& model, Rng& rng);

/// Average <H> over `trajectories` independent noisy executions starting
/// from |0...0>.
double noisy_expectation(const Circuit& circuit, const PauliSum& observable,
                         const NoiseModel& model, std::size_t trajectories,
                         Rng& rng);

}  // namespace vqsim
