#include "serve/admission.hpp"

#include <algorithm>
#include <stdexcept>

namespace vqsim::serve {

const char* to_string(AdmissionOutcome outcome) {
  switch (outcome) {
    case AdmissionOutcome::kAdmitted: return "admitted";
    case AdmissionOutcome::kRejectedRate: return "rejected_rate";
    case AdmissionOutcome::kRejectedQuota: return "rejected_quota";
    case AdmissionOutcome::kRejectedQueueFull: return "rejected_queue_full";
    case AdmissionOutcome::kShedBreakerOpen: return "shed_breaker_open";
    case AdmissionOutcome::kUnknownTenant: return "unknown_tenant";
    case AdmissionOutcome::kRejectedCost: return "rejected_cost";
    case AdmissionOutcome::kShedDegraded: return "shed_degraded";
  }
  return "?";
}

AdmissionController::AdmissionController(const TenantRegistry& registry,
                                         AdmissionPolicy policy)
    : policy_(policy) {
  for (const std::string& name : registry.names()) {
    State s;
    s.config = registry.config(name);
    s.bucket = TokenBucket(s.config.rate);
    s.stats.name = name;
    tenants_.emplace(name, std::move(s));
  }
}

AdmissionController::State& AdmissionController::state(const TenantId& tenant) {
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end())
    throw std::out_of_range("AdmissionController: unknown tenant \"" + tenant +
                            "\"");
  return it->second;
}

void AdmissionController::prune(State& s) {
  auto& slots = s.slots;
  slots.erase(std::remove_if(slots.begin(), slots.end(),
                             [](const ReadyFn& ready) { return ready(); }),
              slots.end());
  s.stats.in_flight = slots.size();
}

AdmissionOutcome AdmissionController::admit_request(
    const TenantId& tenant, Clock::time_point now,
    const runtime::PoolStats& pool, double request_cost, int num_qubits) {
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return AdmissionOutcome::kUnknownTenant;
  State& s = it->second;
  ++s.stats.requests;

  // Shed before anything else: with every breaker open the fleet has no
  // admissible backend, so even a cacheable request that would miss is
  // doomed to queue behind a quarantine. Cache hits are sacrificed too —
  // the shed gate is a fleet-health statement, not a capacity statement.
  if (policy_.shed_when_all_breakers_open && !pool.backends.empty() &&
      pool.open_breakers == static_cast<int>(pool.backends.size())) {
    ++s.stats.shed_breaker_open;
    return AdmissionOutcome::kShedBreakerOpen;
  }
  // Degraded-capacity shed: the fleet may still have healthy members, but
  // when every backend with enough qubits for THIS request is quarantined
  // (e.g. the distributed backend tripped on a rank failure), the request
  // is degraded-only traffic with nowhere to go — shed it while smaller
  // requests keep flowing to the healthy remainder. A request no backend
  // could ever fit is not shed here; the pool rejects it with a structured
  // capability diagnostic instead.
  if (policy_.shed_when_capacity_degraded && num_qubits > 0) {
    bool any_capable = false;
    bool any_healthy = false;
    for (const runtime::BackendHealth& b : pool.backends) {
      if (b.max_qubits < num_qubits) continue;
      any_capable = true;
      if (!b.degraded) {
        any_healthy = true;
        break;
      }
    }
    if (any_capable && !any_healthy) {
      ++s.stats.shed_degraded;
      return AdmissionOutcome::kShedDegraded;
    }
  }
  if (policy_.max_queue_depth > 0 &&
      pool.queue_depth >= policy_.max_queue_depth) {
    ++s.stats.rejected_queue_full;
    return AdmissionOutcome::kRejectedQueueFull;
  }
  // Cost-weighted backlog bound: the depth gate treats a 4-qubit probe and
  // a 24-qubit sweep as equals; this one weighs them by predicted work.
  if (policy_.max_queue_cost > 0.0 &&
      pool.queue_cost + request_cost > policy_.max_queue_cost) {
    ++s.stats.rejected_cost;
    return AdmissionOutcome::kRejectedCost;
  }
  if (!s.bucket.try_acquire(now)) {
    ++s.stats.rejected_rate;
    return AdmissionOutcome::kRejectedRate;
  }
  ++s.stats.admitted;
  return AdmissionOutcome::kAdmitted;
}

bool AdmissionController::try_reserve_slot(const TenantId& tenant,
                                           ReadyFn ready) {
  State& s = state(tenant);
  prune(s);
  if (s.config.max_in_flight > 0 &&
      s.slots.size() >= static_cast<std::size_t>(s.config.max_in_flight)) {
    ++s.stats.rejected_quota;
    // The request consumed a rate token in admit_request; that is
    // deliberate — a quota-rejected request still arrived.
    --s.stats.admitted;
    return false;
  }
  s.slots.push_back(std::move(ready));
  s.stats.in_flight = s.slots.size();
  s.stats.in_flight_high_water =
      std::max(s.stats.in_flight_high_water, s.slots.size());
  return true;
}

void AdmissionController::record(const TenantId& tenant, Served served) {
  State& s = state(tenant);
  switch (served) {
    case Served::kCacheHit: ++s.stats.cache_hits; break;
    case Served::kCoalesced: ++s.stats.coalesced; break;
    case Served::kExecuted: ++s.stats.executed; break;
  }
}

std::size_t AdmissionController::in_flight(const TenantId& tenant) {
  State& s = state(tenant);
  prune(s);
  return s.slots.size();
}

std::vector<TenantAdmissionStats> AdmissionController::stats() {
  std::vector<TenantAdmissionStats> out;
  out.reserve(tenants_.size());
  for (auto& [name, s] : tenants_) {
    prune(s);
    out.push_back(s.stats);
  }
  return out;
}

}  // namespace vqsim::serve
