// Debug invariant hooks for the simulators, compiled in by the
// VQSIM_CHECK_INVARIANTS cmake option (off by default — the checks cost a
// full pass over the state per applied op).
//
// Checked invariants:
//  * StateVector::apply_circuit — the 2-norm is preserved by every gate
//    (every IR gate is unitary, so any drift is a kernel bug);
//  * DensityMatrix::apply_circuit / apply_channel — the trace is preserved
//    (unitaries and trace-preserving channels) and rho stays Hermitian;
//  * StabilizerState — the tableau keeps its symplectic structure
//    (destabilizer i anticommutes with stabilizer i only).
//
// tools/run_sanitizers.sh enables the option in its ASan+UBSan ctest
// configuration, so every tier-1 test doubles as an invariant sweep there.
#pragma once

#include <stdexcept>
#include <string>

namespace vqsim {

#if defined(VQSIM_CHECK_INVARIANTS)
inline constexpr bool kCheckInvariants = true;
#else
inline constexpr bool kCheckInvariants = false;
#endif

[[noreturn]] inline void invariant_failure(const std::string& what) {
  throw std::logic_error("invariant violation: " + what);
}

}  // namespace vqsim
