// Virtual-QPU pool throughput: worker count x batch size sweep.
//
// Each batch entry is one VQE energy-evaluation job (UCCSD ansatz on the
// H2O-like active space) submitted through the VirtualQpuPool — the paper's
// §6.2 outlook of simulating many VQE circuits simultaneously. For every
// (workers, batch) cell we report throughput plus the pool's queue
// telemetry as one BENCH JSON line per cell, and assert that the energies
// are identical across worker counts (the runtime's determinism contract).
//
// On a single-core container the sweep still exercises real threads; the
// wall-clock curve then documents scheduling overhead rather than speedup,
// exactly like the OpenMP thread sweep in perf_scaling.

#include <cstdio>
#include <cstdlib>
#include <future>
#include <limits>
#include <string>
#include <vector>

#include <algorithm>

#include "analyze/diagnostic.hpp"
#include "bench_emit.hpp"
#include "chem/jordan_wigner.hpp"
#include "chem/molecules.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "downfold/active_space.hpp"
#include "resilience/fault_injection.hpp"
#include "runtime/virtual_qpu.hpp"
#include "vqe/ansatz.hpp"

int main() {
  using namespace vqsim;

  const MolecularIntegrals act =
      project_active(water_like(16, 10), ActiveSpace{2, 4});
  const PauliSum h = jordan_wigner(molecular_hamiltonian(act));
  const UccsdAnsatzAdapter ansatz(2 * 4, act.nelec);

  std::printf("# perf_virtual_qpu: energy jobs through the virtual-QPU pool\n");
  std::printf("# %d qubits, %zu Pauli terms, %zu parameters per job\n",
              ansatz.num_qubits(), h.size(), ansatz.num_parameters());

  std::vector<double> reference;  // energies from the first cell, per entry
  bench::BenchEmitter sweep("virtual_qpu");

  for (const int workers : {1, 2, 4, 8}) {
    for (const std::size_t batch : {8u, 32u, 128u}) {
      Rng rng(1234);  // same parameter stream for every cell
      std::vector<std::vector<double>> sets;
      for (std::size_t i = 0; i < batch; ++i) {
        std::vector<double> theta(ansatz.num_parameters());
        for (double& t : theta) t = rng.uniform(-0.4, 0.4);
        sets.push_back(std::move(theta));
      }

      runtime::VirtualQpuPool pool =
          runtime::make_statevector_pool(workers, workers, 16);
      WallTimer timer;
      std::vector<std::future<double>> futures;
      futures.reserve(batch);
      for (const auto& theta : sets)
        futures.push_back(pool.submit_energy(ansatz, h, theta));
      std::vector<double> energies;
      energies.reserve(batch);
      for (auto& f : futures) energies.push_back(f.get());
      pool.wait_all();
      const double wall = timer.seconds();

      // Determinism gate: every cell reproduces the first cell's energies
      // bit-for-bit on the shared prefix.
      if (reference.empty()) reference = energies;
      for (std::size_t i = 0;
           i < std::min(reference.size(), energies.size()); ++i) {
        if (energies[i] != reference[i]) {
          std::fprintf(stderr,
                       "DETERMINISM VIOLATION: workers=%d batch=%zu "
                       "entry=%zu\n",
                       workers, batch, i);
          return EXIT_FAILURE;
        }
      }

      const runtime::PoolCounters counters = pool.counters();
      double queue_wait_mean_ms = 0.0;
      double exec_mean_ms = 0.0;
      if (counters.jobs_completed > 0) {
        queue_wait_mean_ms = 1e3 * counters.total_queue_wait_seconds /
                             static_cast<double>(counters.jobs_completed);
        exec_mean_ms = 1e3 * counters.total_execution_seconds /
                       static_cast<double>(counters.jobs_completed);
      }
      sweep.row()
          .field("workers", workers)
          .field("batch", batch)
          .field("wall_s", wall, "%.6f")
          .field("jobs_per_s", static_cast<double>(batch) / wall, "%.1f")
          .field("queue_depth_high_water", counters.queue_depth_high_water)
          .field("queue_wait_mean_ms", queue_wait_mean_ms, "%.3f")
          .field("exec_mean_ms", exec_mean_ms, "%.3f")
          .field("jobs_completed", counters.jobs_completed)
          .field("jobs_failed", counters.jobs_failed)
          .emit();
    }
  }

  // -- Submit-time rejection taxonomy ---------------------------------------
  // The analyze verifier rejects malformed or infeasible jobs at submission;
  // callers distinguish the failure classes by structured DiagCode instead
  // of string matching. One BENCH line per class: the codes observed and
  // the pure-CPU rejection latency (verification + diagnostics).
  {
    runtime::VirtualQpuPool pool = runtime::make_statevector_pool(1, 1, 16);
    PauliSum z1(1);
    z1.add_term(1.0, "Z");
    bench::BenchEmitter rejection("virtual_qpu_rejection");

    const auto classify = [&](const char* label, Circuit circuit,
                              PauliSum observable,
                              runtime::JobOptions options) {
      WallTimer timer;
      std::string codes;
      bool rejected = false;
      try {
        pool.submit_expectation(std::move(circuit), std::move(observable),
                                options);
      } catch (const analyze::VerificationError& e) {
        rejected = true;
        for (const analyze::Diagnostic& d : e.diagnostics()) {
          const std::string quoted =
              std::string("\"") + analyze::to_string(d.code) + "\"";
          if (codes.find(quoted) != std::string::npos) continue;
          if (!codes.empty()) codes += ",";
          codes += quoted;
        }
      }
      rejection.row()
          .field("case", label)
          .field("rejected", rejected)
          .field("reject_us", 1e6 * timer.seconds(), "%.2f")
          .raw_field("codes", "[" + codes + "]")
          .emit();
    };

    Circuit infeasible(30);
    infeasible.h(0);
    PauliSum obs30(30);
    obs30.add_term(1.0, std::string("Z") + std::string(29, 'I'));
    classify("infeasible_register", std::move(infeasible), std::move(obs30),
             {});

    Circuit nan_rotation(1);
    nan_rotation.rz(std::numeric_limits<double>::quiet_NaN(), 0);
    classify("non_finite_parameter", std::move(nan_rotation), z1, {});

    Circuit non_clifford(1);
    non_clifford.t(0);
    runtime::JobOptions promise;
    promise.clifford_only = true;
    classify("broken_clifford_promise", std::move(non_clifford), z1, promise);

    if (pool.counters().jobs_submitted != 0) {
      std::fprintf(stderr, "REJECTION FAILURE: a malformed job was enqueued\n");
      return EXIT_FAILURE;
    }
  }

  // -- Fault-rate sweep ------------------------------------------------------
  // Resilience overhead under a seeded transient-fault plan on the
  // "qpu.execute" site: what does retrying cost when 0% / 5% / 20% of
  // execution attempts fail? One BENCH line per fault rate: completion
  // rate (must stay 1.0 — the retry layer absorbs every injected fault),
  // p95 per-job latency (queue wait + execution across attempts), and the
  // retry overhead (re-dispatch events per job).
  {
    constexpr std::size_t kJobs = 200;
    Rng rng(1234);
    std::vector<std::vector<double>> sets;
    for (std::size_t i = 0; i < kJobs; ++i) {
      std::vector<double> theta(ansatz.num_parameters());
      for (double& t : theta) t = rng.uniform(-0.4, 0.4);
      sets.push_back(std::move(theta));
    }

    std::vector<double> fault_reference;
    bench::BenchEmitter faults("virtual_qpu_faults");
    for (const double fault_rate : {0.0, 0.05, 0.20}) {
      resilience::FaultPlan plan;
      plan.seed = 20240805;
      resilience::FaultRule rule;
      rule.site = "qpu.execute";
      rule.probability = fault_rate;
      plan.rules.push_back(rule);
      resilience::ScopedFaultPlan scoped(plan);

      runtime::VirtualQpuPool pool = runtime::make_statevector_pool(4, 4, 16);
      runtime::JobOptions options;
      options.retry.max_attempts = 8;
      options.retry.initial_backoff = std::chrono::microseconds(50);
      WallTimer timer;
      std::vector<std::future<double>> futures;
      futures.reserve(kJobs);
      for (const auto& theta : sets)
        futures.push_back(pool.submit_energy(ansatz, h, theta, options));
      std::vector<double> energies;
      energies.reserve(kJobs);
      for (auto& f : futures) energies.push_back(f.get());
      pool.wait_all();
      const double wall = timer.seconds();

      // Faults must be invisible to callers: same energies at every rate.
      if (fault_reference.empty()) fault_reference = energies;
      for (std::size_t i = 0; i < kJobs; ++i) {
        if (energies[i] != fault_reference[i]) {
          std::fprintf(stderr,
                       "DETERMINISM VIOLATION under faults: rate=%.2f "
                       "entry=%zu\n",
                       fault_rate, i);
          return EXIT_FAILURE;
        }
      }

      std::vector<double> latency_ms;
      latency_ms.reserve(kJobs);
      for (const runtime::JobTelemetry& t : pool.telemetry())
        latency_ms.push_back(1e3 *
                             (t.queue_wait_seconds + t.execution_seconds));
      std::sort(latency_ms.begin(), latency_ms.end());
      const double p95 =
          latency_ms.empty()
              ? 0.0
              : latency_ms[std::min(latency_ms.size() - 1,
                                    latency_ms.size() * 95 / 100)];

      const runtime::PoolCounters counters = pool.counters();
      faults.row()
          .field("fault_rate", fault_rate, "%.2f")
          .field("jobs", kJobs)
          .field("completion_rate",
                 static_cast<double>(counters.jobs_completed -
                                     counters.jobs_failed) /
                     static_cast<double>(kJobs),
                 "%.4f")
          .field("wall_s", wall, "%.6f")
          .field("jobs_per_s", static_cast<double>(kJobs) / wall, "%.1f")
          .field("latency_p95_ms", p95, "%.3f")
          .field("retries_per_job",
                 static_cast<double>(counters.jobs_retried) /
                     static_cast<double>(kJobs),
                 "%.4f")
          .field("jobs_recovered", counters.jobs_recovered)
          .field("jobs_failed", counters.jobs_failed)
          .field("breaker_open_events", counters.breaker_open_events)
          .emit();

      if (counters.jobs_failed != 0) {
        std::fprintf(stderr,
                     "RESILIENCE FAILURE: %llu terminal failures at "
                     "rate=%.2f\n",
                     static_cast<unsigned long long>(counters.jobs_failed),
                     fault_rate);
        return EXIT_FAILURE;
      }
    }
  }
  return EXIT_SUCCESS;
}
