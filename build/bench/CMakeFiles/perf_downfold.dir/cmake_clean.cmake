file(REMOVE_RECURSE
  "CMakeFiles/perf_downfold.dir/perf_downfold.cpp.o"
  "CMakeFiles/perf_downfold.dir/perf_downfold.cpp.o.d"
  "perf_downfold"
  "perf_downfold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_downfold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
