#include "pauli/grouping.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "pauli/basis_change.hpp"
#include "pauli/exp_gadget.hpp"
#include "sim/expectation.hpp"
#include "sim/state_vector.hpp"

namespace vqsim {
namespace {

PauliSum random_sum(int n, std::size_t terms, Rng& rng) {
  PauliSum h(n);
  for (std::size_t t = 0; t < terms; ++t) {
    PauliString s;
    for (int q = 0; q < n; ++q)
      s.set_axis(q, static_cast<PauliAxis>(rng.uniform_index(4)));
    h.add_term(rng.normal(), s);
  }
  h.simplify();
  return h;
}

TEST(Grouping, CoversEveryTermExactlyOnce) {
  Rng rng(51);
  const PauliSum h = random_sum(6, 40, rng);
  const auto groups = group_qubitwise_commuting(h);
  std::vector<int> seen(h.size(), 0);
  for (const MeasurementGroup& g : groups)
    for (std::size_t ti : g.term_indices) ++seen[ti];
  for (std::size_t i = 0; i < h.size(); ++i) EXPECT_EQ(seen[i], 1);
}

TEST(Grouping, MembersQwcWithTheirBasis) {
  Rng rng(52);
  const PauliSum h = random_sum(6, 40, rng);
  for (const MeasurementGroup& g : group_qubitwise_commuting(h))
    for (std::size_t ti : g.term_indices)
      EXPECT_TRUE(h[ti].string.qubitwise_commutes_with(g.basis));
}

TEST(Grouping, AllZTermsShareOneGroup) {
  PauliSum h(3);
  h.add_term(1.0, "ZII");
  h.add_term(1.0, "IZI");
  h.add_term(1.0, "ZZZ");
  h.add_term(1.0, "IIZ");
  EXPECT_EQ(group_qubitwise_commuting(h).size(), 1u);
}

TEST(Grouping, ConflictingAxesSplit) {
  PauliSum h(1);
  h.add_term(1.0, "X");
  h.add_term(1.0, "Y");
  h.add_term(1.0, "Z");
  EXPECT_EQ(group_qubitwise_commuting(h).size(), 3u);
}

TEST(Grouping, NeverMoreGroupsThanTerms) {
  Rng rng(53);
  const PauliSum h = random_sum(5, 60, rng);
  EXPECT_LE(group_qubitwise_commuting(h).size(), h.size());
}

TEST(BasisChange, RotatesXAndYOntoZ) {
  // After the rotation, the original string acts diagonally: its expectation
  // equals the Z-mask parity expectation in the rotated frame.
  Rng rng(54);
  for (const char* spec : {"XX", "YY", "XY", "ZX", "YZ"}) {
    AmpVector amps(4);
    for (cplx& a : amps) a = rng.normal_cplx();
    StateVector psi = StateVector::from_amplitudes(std::move(amps));
    psi.normalize();

    const PauliString s = PauliString::from_string(spec);
    const cplx direct = expectation_pauli(psi, s);

    StateVector rotated = psi;
    rotated.apply_circuit(basis_change_circuit(s, 2));
    const double via_mask =
        expectation_z_mask(rotated, z_mask_after_rotation(s));
    EXPECT_NEAR(direct.real(), via_mask, 1e-11) << spec;
  }
}

TEST(BasisChange, InverseUndoes) {
  Rng rng(55);
  AmpVector amps(8);
  for (cplx& a : amps) a = rng.normal_cplx();
  StateVector psi = StateVector::from_amplitudes(std::move(amps));
  psi.normalize();
  const StateVector original = psi;
  const PauliString s = PauliString::from_string("XYZ");
  psi.apply_circuit(basis_change_circuit(s, 3));
  psi.apply_circuit(inverse_basis_change_circuit(s, 3));
  EXPECT_NEAR(psi.fidelity(original), 1.0, 1e-12);
}

TEST(ExpGadget, MatchesDirectExponential) {
  Rng rng(56);
  for (const char* spec : {"XYZ", "ZZI", "IYX", "XII", "YYY"}) {
    const double theta = rng.uniform(-2, 2);
    AmpVector amps(8);
    for (cplx& a : amps) a = rng.normal_cplx();
    StateVector a = StateVector::from_amplitudes(std::move(amps));
    a.normalize();
    StateVector b = a;

    const PauliString s = PauliString::from_string(spec);
    Circuit c(3);
    append_exp_pauli(&c, s, theta);
    a.apply_circuit(c);
    b.apply_exp_pauli(s, theta);

    const cplx overlap = a.inner_product(b);
    EXPECT_NEAR(std::abs(overlap), 1.0, 1e-11) << spec;
    // Not just up to phase: the gadget reproduces exp(-i theta P) exactly.
    EXPECT_NEAR(std::abs(overlap - cplx{1.0, 0.0}), 0.0, 1e-11) << spec;
  }
}

TEST(ExpGadget, GateCountFormulaMatchesEmission) {
  for (const char* spec : {"XYZ", "ZZI", "IYX", "XII", "YYY", "ZIZ"}) {
    const PauliString s = PauliString::from_string(spec);
    Circuit c(3);
    append_exp_pauli(&c, s, 0.37);
    EXPECT_EQ(c.size(), exp_pauli_gate_count(s)) << spec;
  }
  EXPECT_EQ(exp_pauli_gate_count(PauliString::identity()), 0u);
}

TEST(ExpGadget, ControlledVariantControls) {
  // Control |0>: identity on the target register. Control |1>: the gadget.
  const PauliString s = PauliString::from_string("XY");
  const double theta = 0.61;
  Rng rng(57);
  AmpVector amps(4);
  for (cplx& a : amps) a = rng.normal_cplx();
  StateVector target = StateVector::from_amplitudes(std::move(amps));
  target.normalize();

  // Build |0>_c (x) |psi> and |1>_c (x) |psi> on 3 qubits (control = 2).
  for (int cbit = 0; cbit < 2; ++cbit) {
    AmpVector full(8, cplx{0.0, 0.0});
    for (idx i = 0; i < 4; ++i)
      full[(static_cast<idx>(cbit) << 2) | i] = target.data()[i];
    StateVector psi = StateVector::from_amplitudes(std::move(full));

    Circuit c(3);
    append_controlled_exp_pauli(&c, 2, s, theta);
    psi.apply_circuit(c);

    StateVector expected = target;
    if (cbit == 1) expected.apply_exp_pauli(s, theta);
    for (idx i = 0; i < 4; ++i)
      EXPECT_NEAR(std::abs(psi.data()[(static_cast<idx>(cbit) << 2) | i] -
                           expected.data()[i]),
                  0.0, 1e-11)
          << "control=" << cbit;
  }
}

}  // namespace
}  // namespace vqsim
