// Incremental-optimization VQE sweeps (paper §6.2 "future improvements":
// "the optimal parameters from the previous executions can be used to warm
// start the next round").
//
// A sweep runs VQE over a family of Hamiltonians sharing one ansatz shape
// (e.g. a molecule along a bond-stretch coordinate). With warm starts each
// point seeds the optimizer at the previous optimum; the ablation bench
// measures the saved energy evaluations.
#pragma once

#include <functional>
#include <vector>

#include "vqe/vqe.hpp"

namespace vqsim {

/// Produces the observable for sweep parameter `x` (e.g. the JW Hamiltonian
/// of a molecule at bond length x).
using ObservableFactory = std::function<PauliSum(double x)>;

struct SweepPoint {
  double x = 0.0;
  VqeResult result;
};

struct SweepResult {
  std::vector<SweepPoint> points;
  std::size_t total_evaluations = 0;
  /// Compiled-circuit cache accounting for the sweep. Every point binds the
  /// same ansatz shape, so a full sweep compiles exactly once
  /// (misses == 1, hits == points - 1) regardless of sweep length.
  exec::CompiledCircuitCache::Stats compile_stats;
};

struct SweepOptions {
  VqeOptions vqe;
  /// Seed each point with the previous optimum (true) or the HF point
  /// (false, the cold baseline).
  bool warm_start = true;
};

/// Run VQE at every x in `xs` with a shared ansatz.
SweepResult run_vqe_sweep(const Ansatz& ansatz,
                          const ObservableFactory& factory,
                          const std::vector<double>& xs,
                          const SweepOptions& options = {});

}  // namespace vqsim
