// Compiled execution plans: one compile per circuit *shape*, many bindings.
//
// VQE traffic is batch-shaped — every gradient probe, sweep point, and
// optimizer-population member re-runs the same ansatz structure with new
// numeric parameters. Today each evaluation independently re-walks,
// re-fuses, and re-verifies that structure. `CompiledCircuit` does the
// expensive structural work exactly once per shape (keyed by
// ir::circuit_shape_fingerprint) and leaves only the cheap per-binding
// lowering — filling in gate matrices and diagonal phases — on the hot
// path:
//
//   * fusion runs with *structural* options (identity drops disabled), so
//     every binding of a shape fuses to the same gate sequence and a plan
//     built from one representative is valid for all of them;
//   * static verification (analyze::verify_circuit, lint off) runs once at
//     compile time; bound executions skip it entirely;
//   * the fusion pass records a replayable FusionTrace at compile time, so
//     bind() never re-runs fusion: ops whose source gates carry no numeric
//     parameters are lowered once into a template, and only the
//     parameter-dependent ops replay their recorded matrix arithmetic
//     against the new binding's gates;
//   * bind() lowers one binding to a flat CompiledOp program, and
//     bind_batch() lowers K bindings into structure-of-arrays BatchedOps
//     whose per-item payloads stream contiguously across the batch axis.
//
// Bit-identity contract: apply_ops(psi, plan.bind(c)) produces amplitudes
// bit-identical to psi.apply_circuit(plan.fused(c)) — the lowering table
// and the kernels in compiled_circuit.cpp replicate StateVector's gate
// dispatch arithmetic expression-for-expression. The batched kernels in
// batched_state_vector.cpp uphold the same contract per item.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "analyze/diagnostic.hpp"
#include "common/types.hpp"
#include "ir/circuit.hpp"
#include "ir/passes/fusion.hpp"
#include "sim/state_vector.hpp"

namespace vqsim::exec {

/// One lowered gate. `kind` selects a kernel; `v` carries the precomputed
/// numeric payload (matrix entries or diagonal phases) so the kernels never
/// consult the IR. Payload slots per kind:
///   kNop      0   identity
///   kPauli    1   global phase; xm/zm are the X/Z masks
///   kPhase1   1   e^{i phi} applied where bit q0 is set
///   kPhase11  1   e^{i phi} applied where (i & xm) == xm (two-qubit mask)
///   kDiagZ    2   v[0]=e^{-i theta}, v[1]=e^{+i theta} selected by
///                 parity(i & zm) — RZ / RZZ via the exp-Pauli identity
///   kMat2     4   dense 2x2 on q0 (row-major)
///   kCMat2    4   controlled 2x2: control q0, target q1
///   kMat4     16  dense 4x4 on (q0, q1) (row-major)
struct CompiledOp {
  enum class Kind : std::uint8_t {
    kNop,
    kPauli,
    kPhase1,
    kPhase11,
    kDiagZ,
    kMat2,
    kCMat2,
    kMat4,
  };
  Kind kind = Kind::kNop;
  unsigned q0 = 0;
  unsigned q1 = 0;
  std::uint64_t xm = 0;
  std::uint64_t zm = 0;
  std::array<cplx, 16> v{};
};

/// One lowered gate for a K-item batch. Structure (kind, qubits, masks) is
/// shared across the batch — all items have the same shape — while the
/// numeric payload differs per item: vals[s * K + k] holds payload slot `s`
/// of item `k`, so each kernel's inner loop over k streams contiguously.
struct BatchedOp {
  CompiledOp::Kind kind = CompiledOp::Kind::kNop;
  unsigned q0 = 0;
  unsigned q1 = 0;
  std::uint64_t xm = 0;
  std::uint64_t zm = 0;
  std::size_t payload_slots = 0;
  std::vector<cplx> vals;  // vals[slot * batch + item]
};

/// A parameter-slotted, pre-fused, pre-verified execution plan for one
/// circuit shape. Immutable after construction; safe to share across
/// threads (bind/bind_batch/fused are const and allocation-only).
class CompiledCircuit {
 public:
  /// Compiles the representative's shape: structural fusion + one static
  /// verification pass (lint off). Throws std::invalid_argument if the
  /// circuit fails verification.
  explicit CompiledCircuit(const Circuit& representative);

  int num_qubits() const { return num_qubits_; }
  /// Shape fingerprint of the *unfused* circuit — the cache key.
  std::uint64_t shape_fingerprint() const { return shape_fp_; }
  /// Shape fingerprint of the fused circuit (internal consistency check).
  std::uint64_t fused_shape_fingerprint() const { return fused_shape_fp_; }
  std::size_t fused_gate_count() const { return fused_gate_count_; }
  /// Ops whose payload depends on the binding's numeric parameters — the
  /// only ops bind()/bind_batch() recompute; the rest come from the
  /// compile-time template. (Telemetry/benchmark introspection.)
  std::size_t dynamic_op_count() const { return replay_.size(); }
  /// Compile-time verification findings (warnings; errors throw).
  std::span<const analyze::Diagnostic> diagnostics() const {
    return diagnostics_;
  }

  /// Lowers one binding of this shape to an executable op program by
  /// replaying the recorded fusion arithmetic for the parameter-dependent
  /// ops (no fusion pass, no verification). The binding must share the
  /// plan's shape fingerprint (throws otherwise).
  std::vector<CompiledOp> bind(const Circuit& bound) const;

  /// Lowers K bindings into structure-of-arrays batched ops. All bindings
  /// must share the plan's shape fingerprint.
  std::vector<BatchedOp> bind_batch(std::span<const Circuit> bound) const;

  /// The structurally-fused form of one binding — the scalar comparator
  /// for the bit-identity contract (tests and benchmarks). Runs the real
  /// fusion pass; bind() is bit-identical to lowering this circuit.
  Circuit fused(const Circuit& bound) const;

 private:
  // Pre-resolved replay program for one parameter-dependent op. The
  // constant prefix of the group's fusion arithmetic is bit-stable across
  // bindings, so its register state (acc2/m4) is snapshotted at compile
  // time; the remaining steps cache the matrices of binding-invariant
  // gates, and fully-constant one-qubit runs are folded into a single
  // register load. Replaying the steps reproduces the fuser's arithmetic
  // bit for bit while touching only the suffix that can actually change.
  struct ReplayStep {
    FusionTrace::Step::Op op = FusionTrace::Step::Op::kLoad1;
    std::uint32_t gate = 0;  // valid when dynamic
    bool dynamic = false;
    Mat2 c2 = Mat2::identity();  // cached acc2 operand (constant steps)
    Mat4 c4 = Mat4::identity();  // cached m4 operand, embeds/swaps applied
  };
  struct ReplayProgram {
    std::uint32_t output = 0;  // index into trace_.outputs / template_ops_
    FusionTrace::Output::Kind kind = FusionTrace::Output::Kind::kSingleton;
    std::uint32_t gate = 0;  // kSingleton: input gate index
    int q0 = -1;
    int q1 = -1;
    Mat2 acc2 = Mat2::identity();  // register state before steps[0]
    Mat4 m4 = Mat4::identity();
    std::vector<ReplayStep> steps;
  };

  Circuit fuse_structural(const Circuit& bound) const;
  /// Cheap structural-equality check against the compiled shape (the same
  /// fields circuit_shape_fingerprint hashes), used on the bind hot path
  /// instead of re-hashing the candidate circuit.
  bool matches_shape(const Circuit& bound) const;
  CompiledOp run_replay(const ReplayProgram& rp,
                        const std::vector<Gate>& gates) const;
  ReplayProgram build_replay(std::uint32_t output,
                             const std::vector<Gate>& gates) const;

  int num_qubits_ = 0;
  std::uint64_t shape_fp_ = 0;
  std::uint64_t fused_shape_fp_ = 0;
  std::size_t fused_gate_count_ = 0;
  std::vector<analyze::Diagnostic> diagnostics_;
  // Replayable fusion arithmetic plus the one-time lowering of the
  // representative. output_dynamic_[o] marks ops that reference at least
  // one parameterized source gate; replay_ holds their pre-resolved
  // programs. skeleton_* mirror the shape-relevant circuit fields.
  FusionTrace trace_;
  std::vector<CompiledOp> template_ops_;
  std::vector<std::uint8_t> output_dynamic_;
  std::vector<ReplayProgram> replay_;
  std::vector<std::uint32_t> skeleton_gates_;
  std::vector<Measurement> skeleton_measurements_;
};

/// Payload slot count for a kind (see CompiledOp docs).
std::size_t payload_slots(CompiledOp::Kind kind);

/// Lowers one (fused) gate to a CompiledOp. Exposed for tests.
CompiledOp lower_gate(const Gate& gate);

/// Applies a lowered program to a scalar state vector, bit-identical to
/// StateVector::apply_circuit over the corresponding fused circuit.
void apply_ops(StateVector& psi, std::span<const CompiledOp> ops);

}  // namespace vqsim::exec
