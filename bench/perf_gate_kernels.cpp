// Gate-kernel throughput: the shared kernel table (SIMD + generated
// constant-folded kernels, src/kernels) against the seed's serial
// reference expressions (kernels/reference.hpp) — the raw engine speed
// underneath every headline number (paper §4: "distributing parallel
// simulation of gates ... across cores").
//
// Workload: for each gate kind and register size, the same gate sequence
// (cycling operand qubits) is applied twice from the same random state —
// once through kernels::reference::apply_gate (the pre-table scalar code,
// kept verbatim as the baseline), once through StateVector::apply_gate
// (the production dispatch). Best-of-three timing per cell; the two final
// states are compared amplitude for amplitude, so the speedup rows are
// also a bit-identity check.
//
// Emitted as BENCH rows (suite "kernels", drops BENCH_kernels.json). The
// binary self-gates (non-zero exit aborts tools/run_benchmarks.sh and
// tools/ci.sh):
//   - dense workhorse gates (h, cx, swap) >= 2x the reference when the
//     SIMD table is active, >= 1.05x on the scalar fallback (codegen
//     still beats the seed's per-application matrix rebuilds),
//   - no gate kind below 0.7x (a table dispatch must never cost a third
//     of the seed's speed),
//   - every cell bit-identical to the reference.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_emit.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "ir/gate.hpp"
#include "kernels/kernels.hpp"
#include "kernels/reference.hpp"
#include "sim/state_vector.hpp"

namespace {

using namespace vqsim;

std::vector<cplx> random_amps(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<cplx> a(idx{1} << n);
  for (cplx& v : a) v = rng.normal_cplx();
  return a;
}

struct GateCase {
  const char* name;
  GateKind kind;
  double param;
  bool hard;  // held to the >= 2x / >= 1.05x gate
};

// The sequence of gate applications a cell measures: the same kind cycling
// its operand qubit(s) across the register, `reps` times around.
std::vector<Gate> make_sequence(const GateCase& gc, int nq, int reps) {
  std::vector<Gate> seq;
  seq.reserve(static_cast<std::size_t>(reps) * static_cast<std::size_t>(nq));
  for (int r = 0; r < reps; ++r)
    for (int q = 0; q < nq; ++q) {
      Gate g;
      g.kind = gc.kind;
      g.q0 = q;
      if (gate_arity(gc.kind) == 2) g.q1 = (q + 1) % nq;
      g.params[0] = gc.param;
      seq.push_back(g);
    }
  return seq;
}

double best_of(int tries, const std::vector<Gate>& seq, cplx* a, idx dim,
               bool table) {
  double best = 1e300;
  for (int t = 0; t < tries; ++t) {
    WallTimer timer;
    if (table) {
      StateVector sv = StateVector::from_amplitudes(AmpVector(a, a + dim));
      timer.reset();
      for (const Gate& g : seq) sv.apply_gate(g);
      best = std::min(best, timer.seconds());
      if (t == tries - 1) std::memcpy(a, sv.data(), dim * sizeof(cplx));
    } else {
      std::vector<cplx> buf(a, a + dim);
      timer.reset();
      for (const Gate& g : seq) kernels::reference::apply_gate(
          buf.data(), dim, g);
      best = std::min(best, timer.seconds());
      if (t == tries - 1) std::memcpy(a, buf.data(), dim * sizeof(cplx));
    }
  }
  return best;
}

}  // namespace

int main() {
  const GateCase cases[] = {
      {"h", GateKind::kH, 0.0, true},      {"x", GateKind::kX, 0.0, false},
      {"rz", GateKind::kRZ, 0.1, false},   {"cx", GateKind::kCX, 0.0, true},
      {"cz", GateKind::kCZ, 0.0, false},   {"swap", GateKind::kSwap, 0.0, true},
      {"crz", GateKind::kCRZ, 0.4, false}, {"rxx", GateKind::kRXX, 0.3, false},
  };
  const int sizes[] = {12, 16};
  const bool simd = kernels::simd_enabled();
  const double hard_gate = simd ? 2.0 : 1.05;
  const double soft_floor = 0.7;

  std::printf("gate-kernel table vs seed reference (backend: %s)\n",
              kernels::backend_name());

  bench::BenchEmitter emitter("kernels");
  bool ok = true;
  for (const GateCase& gc : cases) {
    for (const int nq : sizes) {
      const idx dim = idx{1} << nq;
      // ~256 full-register applications at nq=16 per timing pass.
      const int reps = nq == 12 ? 256 : 16;
      const std::vector<Gate> seq = make_sequence(gc, nq, reps);

      std::vector<cplx> ref_state = random_amps(nq, 42);
      std::vector<cplx> tab_state = ref_state;
      const double t_ref =
          best_of(3, seq, ref_state.data(), dim, /*table=*/false);
      const double t_tab =
          best_of(3, seq, tab_state.data(), dim, /*table=*/true);

      const double speedup = t_ref / t_tab;
      const double amps_per_sec =
          static_cast<double>(dim) * static_cast<double>(seq.size()) / t_tab;
      const bool identical =
          std::memcmp(ref_state.data(), tab_state.data(),
                      dim * sizeof(cplx)) == 0;
      const double floor = gc.hard ? hard_gate : soft_floor;
      const bool pass = identical && speedup >= floor;

      emitter.row()
          .field("gate", gc.name)
          .field("nq", nq)
          .field("backend", kernels::backend_name())
          .field("ref_seconds", t_ref, "%.6g")
          .field("table_seconds", t_tab, "%.6g")
          .field("speedup", speedup, "%.3f")
          .field("amps_per_sec", amps_per_sec, "%.6g")
          .field("bit_identical", identical)
          .field("gate_floor", floor, "%.2f")
          .field("pass", pass)
          .emit();

      if (!identical) {
        std::fprintf(stderr,
                     "FAIL: %s @ %d qubits diverges from the reference "
                     "(gate: bit-identical)\n",
                     gc.name, nq);
        ok = false;
      }
      if (speedup < floor) {
        std::fprintf(stderr,
                     "FAIL: %s @ %d qubits is %.2fx the reference "
                     "(gate: >= %.2fx)\n",
                     gc.name, nq, speedup, floor);
        ok = false;
      }
    }
  }
  if (ok)
    std::printf("gates OK: all kinds bit-identical, dense gates >= %.2fx "
                "(backend: %s)\n",
                hard_gate, kernels::backend_name());
  return ok ? 0 : 1;
}
