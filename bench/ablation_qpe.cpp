// Ablation: QPE accuracy vs ancilla count and Trotter depth on H2.
//
// Shows the two error floors of phase estimation (paper abstract executes
// QPE on the downfolded systems): the phase-grid resolution 2 pi / (t 2^m)
// falls exponentially with ancillas, but the measured energy error bottoms
// out at the Trotterization bias until the step count grows with it.

#include <cmath>
#include <cstdio>

#include "chem/fci.hpp"
#include "chem/hartree_fock.hpp"
#include "chem/jordan_wigner.hpp"
#include "chem/molecules.hpp"
#include "common/timer.hpp"
#include "qpe/qpe.hpp"

int main() {
  using namespace vqsim;

  const FermionOp h_fermion = molecular_hamiltonian(h2_sto3g());
  const double e_fci = fci_ground_state(h_fermion, 4, 2).energy;
  const double shift = h2_sto3g().hartree_fock_energy();
  PauliSum shifted = jordan_wigner(h_fermion);
  PauliSum ident(4);
  ident.add_term(-shift, PauliString::identity());
  shifted += ident;

  std::printf("# QPE ablation on H2 (E_FCI = %.8f), t = 16\n", e_fci);
  std::printf("%-10s %-8s %-12s %-12s %-10s %-8s\n", "ancillas", "steps",
              "resolution", "|error|", "peak_prob", "wall_s");
  for (int m : {4, 5, 6, 7}) {
    for (int steps : {2, 16}) {
      QpeOptions opts;
      opts.ancilla_qubits = m;
      opts.time = 16.0;
      opts.trotter = {.steps = steps, .order = 2};
      WallTimer timer;
      const QpeResult r = run_qpe(shifted, hf_state_circuit(4, 2), opts);
      const double resolution = 2.0 * kPi / (opts.time * (1 << m));
      std::printf("%-10d %-8d %-12.5f %-12.5f %-10.3f %-8.2f\n", m, steps,
                  resolution, std::abs(r.energy + shift - e_fci),
                  r.peak_probability, timer.seconds());
    }
  }
  return 0;
}
