#include "ir/passes/cancel.hpp"

#include <cmath>
#include <cstddef>
#include <vector>

namespace vqsim {
namespace {

bool is_rotation(GateKind kind) {
  switch (kind) {
    case GateKind::kRX:
    case GateKind::kRY:
    case GateKind::kRZ:
    case GateKind::kP:
    case GateKind::kCRX:
    case GateKind::kCRY:
    case GateKind::kCRZ:
    case GateKind::kCP:
    case GateKind::kRXX:
    case GateKind::kRYY:
    case GateKind::kRZZ:
      return true;
    default:
      return false;
  }
}

bool same_operands(const Gate& a, const Gate& b) {
  return a.q0 == b.q0 && a.q1 == b.q1;
}

// True when `b` is exactly the inverse of `a` (non-rotation kinds only;
// rotations are handled by angle merging).
bool is_inverse_pair(const Gate& a, const Gate& b) {
  if (!same_operands(a, b)) {
    // Symmetric two-qubit gates cancel regardless of operand order.
    const bool symmetric = a.kind == GateKind::kSwap ||
                           a.kind == GateKind::kCZ;
    if (!(symmetric && a.kind == b.kind && a.q0 == b.q1 && a.q1 == b.q0))
      return false;
    return true;
  }
  if (is_rotation(a.kind)) return false;
  const Gate inv = inverse_gate(a);
  if (inv.kind != b.kind) return false;
  if (a.kind == GateKind::kU3) {
    for (int i = 0; i < 3; ++i)
      if (std::abs(inv.params[static_cast<std::size_t>(i)] -
                   b.params[static_cast<std::size_t>(i)]) > 1e-15)
        return false;
  }
  if (a.kind == GateKind::kMat1 || a.kind == GateKind::kMat2)
    return false;  // generic payload comparison is fusion's job
  return true;
}

}  // namespace

Circuit cancel_gates(const Circuit& circuit, CancelStats* stats,
                     double angle_tolerance) {
  const std::size_t n = circuit.size();
  std::vector<Gate> out;
  out.reserve(n);
  std::vector<bool> alive;
  alive.reserve(n);
  // Per-qubit stack of indices into `out` of alive gates touching the qubit.
  std::vector<std::vector<std::size_t>> last(
      static_cast<std::size_t>(circuit.num_qubits()));

  std::size_t pairs = 0;
  std::size_t merged = 0;

  auto top = [&](int q) -> std::size_t {
    auto& s = last[static_cast<std::size_t>(q)];
    while (!s.empty() && !alive[s.back()]) s.pop_back();
    return s.empty() ? static_cast<std::size_t>(-1) : s.back();
  };

  for (const Gate& g : circuit.gates()) {
    const std::size_t ta = top(g.q0);
    const std::size_t tb = g.is_two_qubit() ? top(g.q1)
                                            : static_cast<std::size_t>(-1);
    const bool prev_is_sole_neighbor =
        ta != static_cast<std::size_t>(-1) && (!g.is_two_qubit() || ta == tb);

    if (prev_is_sole_neighbor) {
      Gate& prev = out[ta];
      const bool prev_matches_arity =
          prev.is_two_qubit() == g.is_two_qubit();
      if (prev_matches_arity && is_inverse_pair(prev, g)) {
        alive[ta] = false;
        ++pairs;
        continue;
      }
      if (prev_matches_arity && is_rotation(g.kind) && prev.kind == g.kind &&
          same_operands(prev, g)) {
        prev.params[0] += g.params[0];
        ++merged;
        if (std::abs(prev.params[0]) < angle_tolerance) {
          alive[ta] = false;
          ++pairs;
        }
        continue;
      }
    }

    const std::size_t index = out.size();
    out.push_back(g);
    alive.push_back(true);
    last[static_cast<std::size_t>(g.q0)].push_back(index);
    if (g.is_two_qubit())
      last[static_cast<std::size_t>(g.q1)].push_back(index);
  }

  Circuit result(circuit.num_qubits());
  result.reserve(out.size());
  for (std::size_t i = 0; i < out.size(); ++i)
    if (alive[i]) result.add(out[i]);

  if (stats != nullptr) {
    stats->gates_before = circuit.size();
    stats->gates_after = result.size();
    stats->pairs_cancelled = pairs;
    stats->rotations_merged = merged;
  }
  return result;
}

}  // namespace vqsim
