#include "vqe/adapt.hpp"

#include <gtest/gtest.h>

#include "chem/fci.hpp"
#include "chem/hartree_fock.hpp"
#include "chem/jordan_wigner.hpp"
#include "chem/molecules.hpp"
#include "chem/uccsd.hpp"
#include "common/rng.hpp"
#include "downfold/downfold.hpp"
#include "sim/expectation.hpp"

namespace vqsim {
namespace {

TEST(Adapt, GradientSweepMatchesFiniteDifferences) {
  const PauliSum h = jordan_wigner(molecular_hamiltonian(h2_sto3g()));
  std::vector<PauliSum> pool;
  for (const Excitation& ex : uccsd_excitations(4, 2))
    pool.push_back(excitation_generator_pauli(ex, 4));
  const AdaptAnsatzState state(4, hf_basis_state(2), &pool);
  const CompiledPauliSum hc(h, 4);

  const std::vector<std::size_t> seq = {2, 0, 1, 2};
  Rng rng(81);
  std::vector<double> theta(seq.size());
  for (double& t : theta) t = rng.uniform(-0.4, 0.4);

  std::vector<double> analytic(seq.size());
  state.gradient(hc, seq, theta, analytic);

  StateVector psi(4);
  const double eps = 1e-6;
  for (std::size_t k = 0; k < seq.size(); ++k) {
    std::vector<double> tp = theta;
    tp[k] += eps;
    state.prepare(&psi, seq, tp);
    const double fp = expectation(psi, h);
    tp[k] -= 2 * eps;
    state.prepare(&psi, seq, tp);
    const double fm = expectation(psi, h);
    EXPECT_NEAR(analytic[k], (fp - fm) / (2 * eps), 1e-6) << "k=" << k;
  }
}

TEST(Adapt, H2ConvergesToFci) {
  const FermionOp hf = molecular_hamiltonian(h2_sto3g());
  const PauliSum h = jordan_wigner(hf);
  const double e_fci = fci_ground_state(hf, 4, 2).energy;

  AdaptOptions opts;
  opts.max_operators = 6;
  opts.gradient_tolerance = 1e-6;
  AdaptVqe adapt(h, 2, opts);
  const AdaptResult r = adapt.run();
  EXPECT_NEAR(r.energy, e_fci, 1e-6);
  // H2 needs exactly one double excitation.
  EXPECT_LE(r.iterations.size(), 3u);
}

TEST(Adapt, EnergyDecreasesMonotonically) {
  const MolecularIntegrals ints = water_like(4, 4);
  const PauliSum h = jordan_wigner(molecular_hamiltonian(ints));
  AdaptOptions opts;
  opts.max_operators = 6;
  opts.inner.iterations = 150;
  AdaptVqe adapt(h, 4, opts);
  const AdaptResult r = adapt.run();
  ASSERT_FALSE(r.iterations.empty());
  for (std::size_t i = 1; i < r.iterations.size(); ++i)
    EXPECT_LE(r.iterations[i].energy, r.iterations[i - 1].energy + 1e-7);
  // One parameter per iteration (paper: "+1 layer per iteration").
  for (std::size_t i = 0; i < r.iterations.size(); ++i)
    EXPECT_EQ(r.iterations[i].parameters, i + 1);
}

TEST(Adapt, DownfoldedSystemReachesChemicalAccuracy) {
  // An 8-qubit downfolded water-like system: the miniature of Fig. 5.
  const MolecularIntegrals ints = water_like(6, 6);
  const DownfoldResult df = hermitian_downfold(ints, ActiveSpace{1, 4});
  ASSERT_EQ(df.n_active_spin_orbitals, 8);
  const double e_fci =
      fci_ground_state(df.h_eff, 8, df.n_active_electrons).energy;
  const PauliSum h = jordan_wigner(df.h_eff);

  AdaptOptions opts;
  opts.max_operators = 15;
  opts.reference_energy = e_fci;
  opts.reference_target = kChemicalAccuracy;
  opts.inner.iterations = 250;
  AdaptVqe adapt(h, df.n_active_electrons, opts);
  const AdaptResult r = adapt.run();
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.energy, e_fci, kChemicalAccuracy);
  EXPECT_GE(r.energy, e_fci - 1e-8);  // variational
}

TEST(Adapt, StopsOnVanishingGradients) {
  // A diagonal Hamiltonian whose ground state IS the HF determinant: every
  // pool gradient vanishes at the reference and ADAPT must stop at once.
  PauliSum h(4);
  h.add_term(1.0, "ZIII");
  h.add_term(1.0, "IZII");
  h.add_term(-1.0, "IIZI");
  h.add_term(-1.0, "IIIZ");
  AdaptOptions opts;
  opts.max_operators = 5;
  AdaptVqe adapt(h, 2, opts);
  const AdaptResult r = adapt.run();
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.iterations.empty());
  StateVector hf(4);
  hf.set_basis_state(hf_basis_state(2));
  EXPECT_NEAR(r.energy, expectation(hf, h), 1e-12);
}

TEST(Adapt, CustomPoolConstructorValidates) {
  PauliSum h(2);
  h.add_term(1.0, "ZZ");
  EXPECT_THROW(AdaptVqe(h, 0, std::vector<PauliSum>{}, AdaptOptions{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace vqsim
